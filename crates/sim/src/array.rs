//! Array-scale simulation: N replica devices behind a placement layer.
//!
//! Production traffic does not hit one SSD — it hits dozens behind a
//! striping/replication layer, where the classic "p99 of the slowest of N"
//! effect interacts with per-device GC storms. This module makes the fleet a
//! first-class axis: a [`DeviceSet`] instantiates N devices (sharing one
//! `Arc<SsdConfig>` and forking one warm [`DeviceImage`] across all of them),
//! a pluggable [`Placement`] routes every request of a single trace to
//! exactly one device *ahead of* the host-queue front end, each device runs
//! the existing single-device engine (legacy serial or channel-sharded)
//! unchanged, and the per-device [`SimReport`]s merge into an
//! [`ArrayReport`] carrying per-device distributions plus array-level tail
//! amplification.
//!
//! On top of placement sits [`Redundancy`]: `replicate(r)` and `ec(k, n)`
//! fan each logical request out to a replica/stripe set (anchored at the
//! placement's primary device) and complete it at the wait-for-k order
//! statistic of its copies' responses — the first of `r` for replicated
//! reads, the k-th for EC reconstruction. [`route_redundant`] also models a
//! mid-run device loss ([`FailurePlan`]): later requests route around the
//! dead device and deterministic rebuild reads land on the survivors,
//! flowing through the same event cores so rebuild interference shows up in
//! per-queue [`GcStalls`] and the tail tables. `Redundancy::None` takes the
//! placement-only merge path, bit-identical to PR 9.
//!
//! # Semantics
//!
//! * Devices are **full-footprint replicas**: every device restores the same
//!   image and serves the same logical address space, so any placement is
//!   admissible and placements can be compared on identical state.
//! * Routing preserves arrival times and per-device arrival order; each
//!   device's sub-trace then replays under the run's own front-end
//!   configuration (so a closed-loop sweep keeps `qd` requests outstanding
//!   *per device*).
//! * Array-level quantiles are **exact**: the merge concatenates the raw
//!   per-class latency samples of every device (in device order) and
//!   re-summarizes, rather than approximating from per-device summaries.
//! * Everything is deterministic: results are bit-identical across reruns,
//!   `--jobs`, device-worker counts, and shard-worker counts (for a fixed
//!   engine choice), because devices are independent and merged in fixed
//!   device order.

use crate::config::{ConfigError, SsdConfig};
use crate::hostq::HostQueueConfig;
use crate::metrics::{GcStalls, LatencySamples, LatencySummary, SimReport};
use crate::readflow::RetryController;
use crate::request::{HostRequest, IoOp};
use crate::shard::{run_sharded_queued_collected_from, ShardArena};
use crate::snapshot::DeviceImage;
use crate::ssd::{SimArena, Ssd};
use rr_util::stats::{OnlineStats, Percentiles};
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Routes each request of a trace to one device of an array.
///
/// Implementations must be pure functions of their arguments: the same
/// `(index, request, devices, footprint)` must always map to the same device,
/// so routing is deterministic and reproducible across reruns and worker
/// counts.
pub trait Placement: Sync {
    /// Short policy name (as accepted by `--placement`).
    fn name(&self) -> &'static str;

    /// The device (in `0..devices`) that serves request `req`, the
    /// `index`-th request of the trace (0-based, arrival order).
    /// `footprint` is the trace's logical footprint in pages.
    fn route(&self, index: usize, req: &HostRequest, devices: u32, footprint: u64) -> u32;
}

/// Exact round-robin striping: request `i` lands on device `i mod N`.
/// Perfectly balanced per-request, blind to address locality.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinStripe;

impl Placement for RoundRobinStripe {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn route(&self, index: usize, _req: &HostRequest, devices: u32, _footprint: u64) -> u32 {
        (index % devices as usize) as u32
    }
}

/// LPN-hash placement: a request lands on `splitmix64(lpn) mod N`, so every
/// access to one logical page consistently hits the same device (the
/// consistent-hashing analogue of a key-value fleet).
#[derive(Debug, Clone, Copy, Default)]
pub struct LpnHash;

impl Placement for LpnHash {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn route(&self, _index: usize, req: &HostRequest, devices: u32, _footprint: u64) -> u32 {
        (splitmix64(req.lpn) % devices as u64) as u32
    }
}

/// Hot/cold tiering: the hot quarter of the address space (`lpn <
/// footprint/4`) stripes round-robin over the first `⌈N/2⌉` devices, the
/// cold remainder hashes over the rest. With fewer than two devices the
/// cold tier is empty and everything lands on the hot tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotColdTier;

impl Placement for HotColdTier {
    fn name(&self) -> &'static str {
        "tier"
    }

    fn route(&self, index: usize, req: &HostRequest, devices: u32, footprint: u64) -> u32 {
        let hot = devices.div_ceil(2);
        let cold = devices - hot;
        if cold == 0 || req.lpn < footprint / 4 {
            (index % hot as usize) as u32
        } else {
            hot + (splitmix64(req.lpn) % cold as u64) as u32
        }
    }
}

/// SplitMix64: a full-avalanche mix of one `u64`, used so LPN-hash routing
/// does not alias with the FTL's own striding.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The built-in placement policies, as selected by `--placement`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// [`RoundRobinStripe`].
    #[default]
    RoundRobin,
    /// [`LpnHash`].
    LpnHash,
    /// [`HotColdTier`].
    HotCold,
}

static STRIPE: RoundRobinStripe = RoundRobinStripe;
static HASH: LpnHash = LpnHash;
static TIER: HotColdTier = HotColdTier;

impl PlacementPolicy {
    /// Parses a `--placement` value (`rr`, `hash`, `tier`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" => Some(Self::RoundRobin),
            "hash" => Some(Self::LpnHash),
            "tier" => Some(Self::HotCold),
            _ => None,
        }
    }

    /// The policy's CLI name.
    pub fn name(self) -> &'static str {
        self.placement().name()
    }

    /// The policy as a [`Placement`] trait object.
    pub fn placement(self) -> &'static dyn Placement {
        match self {
            Self::RoundRobin => &STRIPE,
            Self::LpnHash => &HASH,
            Self::HotCold => &TIER,
        }
    }

    /// Routes one request (see [`Placement::route`]).
    pub fn route(self, index: usize, req: &HostRequest, devices: u32, footprint: u64) -> u32 {
        self.placement().route(index, req, devices, footprint)
    }
}

/// Routes every request of `requests` and returns the device index each one
/// lands on — the single source of truth the trace-splitting hooks and the
/// routing-invariant tests share.
pub fn route_indices(
    requests: &[HostRequest],
    devices: u32,
    placement: PlacementPolicy,
    footprint: u64,
) -> Vec<u32> {
    requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let d = placement.route(i, r, devices, footprint);
            debug_assert!(d < devices, "placement routed request {i} to device {d}");
            d
        })
        .collect()
}

// ---- redundancy ------------------------------------------------------------

/// How logical requests fan out across the array's devices.
///
/// * `None` — every request goes to exactly one device (the PR 9
///   placement-only path, byte-frozen).
/// * `Replicate { r }` — every request is copied to `r` devices; a read
///   completes at the **first** response (read hedging), a write waits for
///   all `r` copies (durability).
/// * `Ec { k, n }` — requests stripe over an `n`-device span; a read fans to
///   `k` stripe members and completes at the **k-th** (last) response (the
///   reconstruction fan-in), a write updates all its targeted members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// Placement-only routing, one device per request.
    #[default]
    None,
    /// `r`-way replication.
    Replicate {
        /// Copies per request (≥ 2 to be meaningful).
        r: u32,
    },
    /// `k`-of-`n` erasure coding.
    Ec {
        /// Responses a read needs (data shards touched).
        k: u32,
        /// Stripe span in devices.
        n: u32,
    },
}

impl Redundancy {
    /// Parses a `--redundancy` value: `none`, `replicate:R` (R ≥ 2) or
    /// `ec:K:N` (1 ≤ K < N).
    pub fn parse(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(Self::None);
        }
        if let Some(r) = s.strip_prefix("replicate:") {
            let r: u32 = r.parse().ok()?;
            return (r >= 2).then_some(Self::Replicate { r });
        }
        if let Some(kn) = s.strip_prefix("ec:") {
            let (k, n) = kn.split_once(':')?;
            let (k, n): (u32, u32) = (k.parse().ok()?, n.parse().ok()?);
            return (k >= 1 && k < n).then_some(Self::Ec { k, n });
        }
        None
    }

    /// The scheme's CLI name (`none`, `replicate:2`, `ec:2:3`, ...).
    pub fn name(self) -> String {
        match self {
            Self::None => "none".to_string(),
            Self::Replicate { r } => format!("replicate:{r}"),
            Self::Ec { k, n } => format!("ec:{k}:{n}"),
        }
    }

    /// Whether the scheme fans requests out at all.
    pub fn is_redundant(self) -> bool {
        !matches!(self, Self::None)
    }

    /// The replica/stripe set request `req` (the `index`-th of the trace)
    /// fans out to: the placement's primary device plus its successors
    /// (mod `devices`) within the scheme's stripe span, skipping a `failed`
    /// device. The set is a pure function of its arguments — stable across
    /// calls, never larger than the stripe span (`r`, `n`, or 1), never
    /// repeating a device — and degrades deterministically when the failed
    /// device would have been a member: the surviving members keep their
    /// order and the next in-span successor (if any) fills in.
    pub fn route_set(
        self,
        index: usize,
        req: &HostRequest,
        devices: u32,
        footprint: u64,
        placement: PlacementPolicy,
        failed: Option<u32>,
    ) -> Vec<u32> {
        assert!(devices > 0, "cannot route across zero devices");
        let primary = placement.route(index, req, devices, footprint);
        let (span, width) = match self {
            Self::None => (1, 1),
            Self::Replicate { r } => (devices, r.min(devices)),
            Self::Ec { k, n } => {
                let span = n.min(devices);
                let width = if req.op == IoOp::Read {
                    k.min(span)
                } else {
                    span
                };
                (span, width)
            }
        };
        let set: Vec<u32> = (0..span)
            .map(|j| (primary + j) % devices)
            .filter(|&d| Some(d) != failed)
            .take(width as usize)
            .collect();
        if set.is_empty() {
            // Degenerate single-device array with that device failed: route
            // to the primary anyway so the request is not lost.
            vec![primary]
        } else {
            set
        }
    }

    /// How many of a request's `set_len` copies must respond before the
    /// logical request completes: 1 for replicated reads (first copy wins),
    /// all of them otherwise (EC reconstruction fan-in; write durability).
    pub fn wait_for(self, op: IoOp, set_len: usize) -> u32 {
        match self {
            Self::Replicate { .. } if op == IoOp::Read => 1,
            _ => set_len as u32,
        }
    }
}

/// A mid-run device loss: requests arriving at or after `at` route around
/// device `device`, and deterministic rebuild reads are injected across the
/// survivors (see [`route_redundant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePlan {
    /// The device that fails.
    pub device: u32,
    /// Trace time of the failure.
    pub at: SimTime,
}

/// Simulated gap between consecutive rebuild reads injected after a device
/// loss, in µs — a steady background reconstruction stream rather than a
/// single burst.
pub const REBUILD_INTERVAL_US: u64 = 25;

/// Cap on lost logical pages whose reconstruction is injected into the run
/// (the rebuild window that overlaps the trace horizon; a full-device
/// rebuild takes far longer than any trace).
pub const REBUILD_PAGE_CAP: u64 = 2048;

/// Salt decorrelating rebuild-source selection from page placement.
const REBUILD_SALT: u64 = 0xC0DE_D00D_5EED_CAFE;

/// A trace routed under a redundancy scheme (and optional device loss):
/// per-device request streams plus the bookkeeping that lets the merge
/// reassemble each logical request from its copies' responses.
#[derive(Debug, Clone)]
pub struct RedundantRouting {
    /// Per-device request streams (logical copies interleaved with rebuild
    /// reads), each in arrival order.
    device_requests: Vec<Vec<HostRequest>>,
    /// Per logical request: the `(device, position-in-device-stream)` of
    /// each issued copy, in route-set order.
    copies: Vec<Vec<(u32, u32)>>,
    /// Responses to wait for per logical request (the k in wait-for-k).
    wait_for: Vec<u32>,
    /// Whether each logical request is a read.
    is_read: Vec<bool>,
    /// Rebuild reads injected per device.
    rebuild_reads: Vec<u64>,
    /// The scheme the routing was computed under.
    scheme: Redundancy,
    /// The failed device, when the failure fell inside the trace horizon.
    failed: Option<u32>,
}

impl RedundantRouting {
    /// Per-device request streams, in device order.
    pub fn device_requests(&self) -> &[Vec<HostRequest>] {
        &self.device_requests
    }

    /// Number of logical requests routed.
    pub fn logical_len(&self) -> usize {
        self.copies.len()
    }

    /// The `(device, position)` copies of logical request `i`.
    pub fn copies_of(&self, i: usize) -> &[(u32, u32)] {
        &self.copies[i]
    }

    /// Rebuild reads injected per device (all zero without a failure).
    pub fn rebuild_reads(&self) -> &[u64] {
        &self.rebuild_reads
    }

    /// The failed device, when the failure fell inside the trace horizon.
    pub fn failed_device(&self) -> Option<u32> {
        self.failed
    }
}

/// Routes a trace across `devices` array members under `redundancy` (and an
/// optional mid-run `failure`), producing the per-device request streams
/// and the copy map the merge needs.
///
/// Semantics:
///
/// * Each logical request fans out to [`Redundancy::route_set`]; copies keep
///   the request's arrival time, so per-device streams stay arrival-sorted.
/// * A failure **at or before the trace horizon** (the last request's
///   arrival) makes requests arriving from `failure.at` on route around the
///   failed device, and injects rebuild reads: the failed device's share of
///   the footprint (`splitmix64(lpn) % devices == failed`, capped at
///   [`REBUILD_PAGE_CAP`] pages) is re-read from survivors — one
///   deterministic source per page under `none`/`replicate`, `k` cyclic
///   sources per page under `ec:k:n` (reconstruction fan-in) — spaced
///   [`REBUILD_INTERVAL_US`] apart from `failure.at`.
/// * A failure **beyond the trace horizon** (or on an empty trace, an
///   out-of-range device, or a single-device array) is dropped entirely:
///   the routing is structurally identical to an unfailed one.
/// * Requests already issued before `failure.at` complete normally — the
///   loss is fail-stop for *routing*, modelling a controller that stops
///   sending new I/O to the dead device while in-flight I/O drains.
pub fn route_redundant(
    requests: &[HostRequest],
    devices: u32,
    placement: PlacementPolicy,
    footprint: u64,
    redundancy: Redundancy,
    failure: Option<FailurePlan>,
) -> RedundantRouting {
    assert!(devices > 0, "cannot route across zero devices");
    let failure = failure.filter(|f| {
        f.device < devices && devices > 1 && requests.last().is_some_and(|r| f.at <= r.arrival)
    });
    // Rebuild schedule: (arrival, sources, lpn), arrival-sorted by
    // construction.
    let mut rebuild: Vec<(SimTime, Vec<u32>, u64)> = Vec::new();
    if let Some(f) = failure {
        let survivors: Vec<u32> = (0..devices).filter(|&d| d != f.device).collect();
        let sources_per_page = match redundancy {
            Redundancy::Ec { k, .. } => (k as usize).clamp(1, survivors.len()),
            _ => 1,
        };
        let mut injected = 0u64;
        for lpn in 0..footprint {
            if injected >= REBUILD_PAGE_CAP {
                break;
            }
            if splitmix64(lpn) % devices as u64 != f.device as u64 {
                continue;
            }
            let arrival = f.at + SimTime::from_us(injected * REBUILD_INTERVAL_US);
            let start = (splitmix64(lpn ^ REBUILD_SALT) % survivors.len() as u64) as usize;
            let sources = (0..sources_per_page)
                .map(|j| survivors[(start + j) % survivors.len()])
                .collect();
            rebuild.push((arrival, sources, lpn));
            injected += 1;
        }
    }
    let mut device_requests: Vec<Vec<HostRequest>> = vec![Vec::new(); devices as usize];
    let mut rebuild_reads = vec![0u64; devices as usize];
    let mut copies = Vec::with_capacity(requests.len());
    let mut wait_for = Vec::with_capacity(requests.len());
    let mut is_read = Vec::with_capacity(requests.len());
    let mut next_rebuild = 0usize;
    let flush_rebuild = |upto: Option<SimTime>,
                         next_rebuild: &mut usize,
                         device_requests: &mut Vec<Vec<HostRequest>>,
                         rebuild_reads: &mut Vec<u64>| {
        while *next_rebuild < rebuild.len() && upto.is_none_or(|t| rebuild[*next_rebuild].0 < t) {
            let (at, sources, lpn) = &rebuild[*next_rebuild];
            for &d in sources {
                device_requests[d as usize].push(HostRequest::new(*at, IoOp::Read, *lpn, 1));
                rebuild_reads[d as usize] += 1;
            }
            *next_rebuild += 1;
        }
    };
    for (i, r) in requests.iter().enumerate() {
        // Rebuild reads interleave by arrival time (ties: the logical
        // request first, matching `Trace::new`'s stable sort).
        flush_rebuild(
            Some(r.arrival),
            &mut next_rebuild,
            &mut device_requests,
            &mut rebuild_reads,
        );
        let active_fail = failure.filter(|f| r.arrival >= f.at).map(|f| f.device);
        let set = redundancy.route_set(i, r, devices, footprint, placement, active_fail);
        wait_for.push(redundancy.wait_for(r.op, set.len()));
        is_read.push(r.op == IoOp::Read);
        let mut c = Vec::with_capacity(set.len());
        for d in set {
            c.push((d, device_requests[d as usize].len() as u32));
            device_requests[d as usize].push(*r);
        }
        copies.push(c);
    }
    flush_rebuild(
        None,
        &mut next_rebuild,
        &mut device_requests,
        &mut rebuild_reads,
    );
    RedundantRouting {
        device_requests,
        copies,
        wait_for,
        is_read,
        rebuild_reads,
        scheme: redundancy,
        failed: failure.map(|f| f.device),
    }
}

/// Redundancy attribution of one array run: the wait-for-k latency class,
/// which reads the scheme rescued from the slowest device, and the
/// per-device fan-out and rebuild counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyStats {
    /// Scheme name (`replicate:2`, `ec:2:3`, ...).
    pub scheme: String,
    /// The logical read latency distribution — each read's k-th (or
    /// 1st-of-r) copy response, the wait-for-k latency.
    pub wait_for_k: LatencySummary,
    /// Replicated reads whose copy on the slowest device (worst read p99.9)
    /// was strictly slower than the copy that completed them — reads the
    /// scheme rescued from that device's GC window. EC reads wait for their
    /// whole fan-out, so they never rescue.
    pub rescued_reads: u64,
    /// Total latency those rescued reads avoided, µs (slowest-device copy
    /// minus completing copy, summed).
    pub rescued_saved_us: f64,
    /// Read copies issued per device (fan-out attribution).
    pub fanout_reads: Vec<u64>,
    /// Write copies issued per device.
    pub fanout_writes: Vec<u64>,
    /// Rebuild reads injected per device (all zero without a failure).
    pub rebuild_reads: Vec<u64>,
    /// The failed device, when a failure fell inside the trace horizon.
    pub failed_device: Option<u32>,
}

/// Merged results of one array run: the per-device [`SimReport`]s (device
/// `i` at index `i`) plus exact array-level latency classes and the
/// tail-amplification quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// Per-device reports, in device order.
    pub devices: Vec<SimReport>,
    /// Exact array-level read latency distribution (all devices' samples).
    pub read_latency: LatencySummary,
    /// Exact array-level write latency distribution.
    pub write_latency: LatencySummary,
    /// Exact array-level distribution of retried reads.
    pub retried_read_latency: LatencySummary,
    /// Response-time statistics over all host requests of all devices.
    pub response_us: OnlineStats,
    /// Response-time statistics over host reads of all devices.
    pub read_response_us: OnlineStats,
    /// Host requests completed across the array.
    pub requests_completed: u64,
    /// Discrete events processed across the array.
    pub events_processed: u64,
    /// Array makespan: the *slowest* device's makespan (devices run
    /// concurrently in wall-clock terms).
    pub makespan: SimTime,
    /// Redundancy attribution, when the run fanned requests out (see
    /// [`RedundancyStats`]); `None` on the placement-only path.
    pub redundancy: Option<RedundancyStats>,
}

impl ArrayReport {
    /// Merges per-device results (in device order) into an array report.
    fn merge(per_device: Vec<(SimReport, LatencySamples)>) -> Self {
        let mut reads = Percentiles::new();
        let mut writes = Percentiles::new();
        let mut retried = Percentiles::new();
        let mut response_us = OnlineStats::new();
        let mut read_response_us = OnlineStats::new();
        let mut requests_completed = 0u64;
        let mut events_processed = 0u64;
        let mut makespan = SimTime::ZERO;
        let mut devices = Vec::with_capacity(per_device.len());
        for (report, samples) in per_device {
            for &x in &samples.reads {
                reads.push(x);
            }
            for &x in &samples.writes {
                writes.push(x);
            }
            for &x in &samples.retried_reads {
                retried.push(x);
            }
            response_us.merge(&report.response_us);
            read_response_us.merge(&report.read_response_us);
            requests_completed += report.requests_completed;
            events_processed += report.events_processed;
            makespan = makespan.max(report.makespan);
            devices.push(report);
        }
        Self {
            devices,
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            retried_read_latency: retried.summary(),
            response_us,
            read_response_us,
            requests_completed,
            events_processed,
            makespan,
            redundancy: None,
        }
    }

    /// Merges per-device results of a redundantly routed run: the array's
    /// latency classes are computed over **logical** requests — each one the
    /// wait-for-k order statistic of its copies' response latencies — rather
    /// than over the per-device copy populations, and `requests_completed`
    /// counts logical requests (per-device completions exceed it by the
    /// fan-out plus any rebuild reads).
    ///
    /// Copies replay as independent requests under each device's own front
    /// end, so the order statistic combines per-copy response latencies
    /// (submission-relative) — the standard fork-join approximation of a
    /// hedged read.
    fn merge_redundant(
        per_device: Vec<(SimReport, LatencySamples)>,
        routing: &RedundantRouting,
    ) -> Self {
        let (devices, samples): (Vec<SimReport>, Vec<LatencySamples>) =
            per_device.into_iter().unzip();
        let mut events_processed = 0u64;
        let mut makespan = SimTime::ZERO;
        for report in &devices {
            events_processed += report.events_processed;
            makespan = makespan.max(report.makespan);
        }
        // The rescue attribution target: the device with the worst read
        // p99.9 (same selection as `slowest_device`).
        let mut slowest: Option<(u32, f64)> = None;
        for (i, d) in devices.iter().enumerate() {
            if let Some(p) = d.read_latency.p999 {
                if slowest.is_none_or(|(_, w)| p > w) {
                    slowest = Some((i as u32, p));
                }
            }
        }
        let slowest = slowest.map(|(i, _)| i);
        let mut reads = Percentiles::new();
        let mut writes = Percentiles::new();
        let mut retried = Percentiles::new();
        let mut wait_for_k = Percentiles::new();
        let mut response_us = OnlineStats::new();
        let mut read_response_us = OnlineStats::new();
        let mut fanout_reads = vec![0u64; devices.len()];
        let mut fanout_writes = vec![0u64; devices.len()];
        let mut rescued_reads = 0u64;
        let mut rescued_saved_us = 0.0;
        let mut scratch: Vec<(f64, bool, u32)> = Vec::new();
        for i in 0..routing.logical_len() {
            scratch.clear();
            for &(d, pos) in routing.copies_of(i) {
                let (us, was_retried) = samples[d as usize].by_request[pos as usize];
                scratch.push((us, was_retried, d));
            }
            // Stable by latency: ties keep route-set order, so the merge is
            // deterministic.
            scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("latencies are finite"));
            let w = (routing.wait_for[i] as usize).clamp(1, scratch.len());
            let completed = scratch[w - 1].0;
            let retried_any = scratch[..w].iter().any(|c| c.1);
            response_us.push(completed);
            if routing.is_read[i] {
                read_response_us.push(completed);
                reads.push(completed);
                wait_for_k.push(completed);
                if retried_any {
                    retried.push(completed);
                }
                for c in &scratch {
                    fanout_reads[c.2 as usize] += 1;
                }
                if w < scratch.len() {
                    if let Some(slow) = slowest {
                        let worst_on_slow = scratch[w..]
                            .iter()
                            .filter(|c| c.2 == slow)
                            .map(|c| c.0)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if worst_on_slow > completed {
                            rescued_reads += 1;
                            rescued_saved_us += worst_on_slow - completed;
                        }
                    }
                }
            } else {
                writes.push(completed);
                for c in &scratch {
                    fanout_writes[c.2 as usize] += 1;
                }
            }
        }
        let redundancy = RedundancyStats {
            scheme: routing.scheme.name(),
            wait_for_k: wait_for_k.summary(),
            rescued_reads,
            rescued_saved_us,
            fanout_reads,
            fanout_writes,
            rebuild_reads: routing.rebuild_reads.clone(),
            failed_device: routing.failed,
        };
        Self {
            devices,
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            retried_read_latency: retried.summary(),
            response_us,
            read_response_us,
            requests_completed: routing.logical_len() as u64,
            events_processed,
            makespan,
            redundancy: Some(redundancy),
        }
    }

    /// Number of devices in the array.
    pub fn device_count(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Average response time in µs over all requests of all devices.
    pub fn avg_response_us(&self) -> f64 {
        self.response_us.mean()
    }

    /// Array throughput in kIOPS: total completions over the slowest
    /// device's makespan (devices serve concurrently).
    pub fn kiops(&self) -> f64 {
        let us = self.makespan.as_us_f64();
        if us <= 0.0 {
            0.0
        } else {
            self.requests_completed as f64 / us * 1_000.0
        }
    }

    /// Total GC stalls attributed to device `device` (summed over its host
    /// queues) — the quantity that explains which device's GC storm drives
    /// the array tail.
    pub fn device_gc(&self, device: usize) -> GcStalls {
        let mut total = GcStalls::default();
        for q in &self.devices[device].per_queue {
            total.suspensions += q.gc.suspensions;
            total.preemptions += q.gc.preemptions;
            total.waits += q.gc.waits;
            total.deferrals += q.gc.deferrals;
            total.stall_us += q.gc.stall_us;
        }
        total
    }

    /// The device with the worst read p99.9 (lowest index on ties), or
    /// `None` when no device completed a read — the array-tail culprit.
    pub fn slowest_device(&self) -> Option<u32> {
        let mut worst: Option<(u32, f64)> = None;
        for (i, d) in self.devices.iter().enumerate() {
            if let Some(p) = d.read_latency.p999 {
                if worst.is_none_or(|(_, w)| p > w) {
                    worst = Some((i as u32, p));
                }
            }
        }
        worst.map(|(i, _)| i)
    }

    /// Best (lowest) per-device read quantile: `q99` selects p99, otherwise
    /// p99.9.
    fn best_device_read(&self, q99: bool) -> Option<f64> {
        self.devices
            .iter()
            .filter_map(|d| {
                if q99 {
                    d.read_latency.p99
                } else {
                    d.read_latency.p999
                }
            })
            .min_by(|a, b| a.partial_cmp(b).expect("latencies are finite"))
    }

    /// Median per-device read quantile (lower-middle on even counts, so the
    /// value is always an actual device's quantile).
    fn median_device_read(&self, q99: bool) -> Option<f64> {
        let mut qs: Vec<f64> = self
            .devices
            .iter()
            .filter_map(|d| {
                if q99 {
                    d.read_latency.p99
                } else {
                    d.read_latency.p999
                }
            })
            .collect();
        if qs.is_empty() {
            return None;
        }
        qs.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Some(qs[(qs.len() - 1) / 2])
    }

    /// Best per-device read p99 (the fastest device's tail).
    pub fn best_device_read_p99(&self) -> Option<f64> {
        self.best_device_read(true)
    }

    /// Best per-device read p99.9.
    pub fn best_device_read_p999(&self) -> Option<f64> {
        self.best_device_read(false)
    }

    /// Median per-device read p99.
    pub fn median_device_read_p99(&self) -> Option<f64> {
        self.median_device_read(true)
    }

    /// Median per-device read p99.9.
    pub fn median_device_read_p999(&self) -> Option<f64> {
        self.median_device_read(false)
    }

    /// Array-tail amplification at p99: the array-level read p99 over the
    /// *best* device's read p99 (≥ 1 by construction when every device saw
    /// reads and requests route to single devices — the fleet can only be
    /// as fast as its fastest member). Under redundancy the numerator is
    /// the **post-redundancy** wait-for-k tail, so replication can push the
    /// ratio *below* 1: hedged reads beat even the best single device.
    pub fn amplification_p99(&self) -> Option<f64> {
        match (self.read_latency.p99, self.best_device_read_p99()) {
            (Some(array), Some(best)) if best > 0.0 => Some(array / best),
            _ => None,
        }
    }

    /// Array-tail amplification at p99.9 (array read p99.9 over the best
    /// device's read p99.9).
    pub fn amplification_p999(&self) -> Option<f64> {
        match (self.read_latency.p999, self.best_device_read_p999()) {
            (Some(array), Some(best)) if best > 0.0 => Some(array / best),
            _ => None,
        }
    }
}

/// N devices' worth of retained simulation state: one legacy [`SimArena`]
/// and one [`ShardArena`] per device slot, reused run after run (queries
/// after cells), so an array restores N warm images without re-cloning or
/// re-allocating anything.
#[derive(Debug)]
pub struct DeviceSet {
    devices: u32,
    legacy: Vec<SimArena>,
    sharded: Vec<ShardArena>,
}

impl DeviceSet {
    /// Creates a device set of `devices` slots.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] when `devices` is zero.
    pub fn new(devices: u32) -> Result<Self, ConfigError> {
        if devices == 0 {
            return Err(ConfigError::new(
                "an array needs at least one device (devices = 0)",
            ));
        }
        Ok(Self {
            devices,
            legacy: (0..devices).map(|_| SimArena::new()).collect(),
            sharded: (0..devices).map(|_| ShardArena::default()).collect(),
        })
    }

    /// Number of device slots.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Runs one routed trace across the array and merges the results.
    ///
    /// `device_traces[i]` is device `i`'s sub-trace (see [`route_indices`]
    /// and `rr_workloads::Trace::split_routed`); `images` is the per-device
    /// warm-start fork from [`crate::snapshot::ImageBank::fork_for_array`]
    /// (`None` cold-starts every device); `shard_workers = 0` runs every
    /// device on the legacy serial engine, anything larger runs each device
    /// on the channel-sharded engine with that worker budget;
    /// `device_workers` bounds how many devices simulate concurrently.
    /// Results are invariant to both worker knobs' thread counts (the
    /// engine choice itself matters, exactly as for one device).
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] on a device-count mismatch between this set
    /// and the routed trace or the image fork, and on any
    /// configuration/footprint/image error of a device run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_queued_from(
        &mut self,
        cfg: &Arc<SsdConfig>,
        make_controller: &(dyn Fn() -> Box<dyn RetryController + Send> + Sync),
        lpn_count: u64,
        device_traces: &[&[HostRequest]],
        queues: &HostQueueConfig,
        images: Option<&[&DeviceImage]>,
        shard_workers: usize,
        device_workers: usize,
    ) -> Result<ArrayReport, ConfigError> {
        let results = self.run_devices(
            cfg,
            make_controller,
            lpn_count,
            device_traces,
            queues,
            images,
            shard_workers,
            device_workers,
            false,
        )?;
        Ok(ArrayReport::merge(results))
    }

    /// Runs a redundantly routed trace (see [`route_redundant`]) across the
    /// array: every device replays its copy/rebuild stream with per-request
    /// tracking on, and the merge reassembles each logical request at its
    /// wait-for-k order statistic into an [`ArrayReport`] carrying
    /// [`RedundancyStats`].
    ///
    /// # Errors
    ///
    /// As [`DeviceSet::run_queued_from`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_redundant_from(
        &mut self,
        cfg: &Arc<SsdConfig>,
        make_controller: &(dyn Fn() -> Box<dyn RetryController + Send> + Sync),
        lpn_count: u64,
        routing: &RedundantRouting,
        queues: &HostQueueConfig,
        images: Option<&[&DeviceImage]>,
        shard_workers: usize,
        device_workers: usize,
    ) -> Result<ArrayReport, ConfigError> {
        let slices: Vec<&[HostRequest]> = routing
            .device_requests
            .iter()
            .map(|v| v.as_slice())
            .collect();
        let results = self.run_devices(
            cfg,
            make_controller,
            lpn_count,
            &slices,
            queues,
            images,
            shard_workers,
            device_workers,
            true,
        )?;
        Ok(ArrayReport::merge_redundant(results, routing))
    }

    /// The shared device-running body behind both merge paths: runs every
    /// device's stream (serially or work-stealing across `device_workers`)
    /// and returns the per-device results in device order.
    #[allow(clippy::too_many_arguments)]
    fn run_devices(
        &mut self,
        cfg: &Arc<SsdConfig>,
        make_controller: &(dyn Fn() -> Box<dyn RetryController + Send> + Sync),
        lpn_count: u64,
        device_traces: &[&[HostRequest]],
        queues: &HostQueueConfig,
        images: Option<&[&DeviceImage]>,
        shard_workers: usize,
        device_workers: usize,
        track: bool,
    ) -> Result<Vec<(SimReport, LatencySamples)>, ConfigError> {
        if device_traces.len() != self.devices as usize {
            return Err(ConfigError::new(format!(
                "device set holds {} devices but the routed trace has {} slices",
                self.devices,
                device_traces.len()
            )));
        }
        if let Some(images) = images {
            if images.len() != self.devices as usize {
                return Err(ConfigError::new(format!(
                    "device set holds {} devices but the image fork has {} slots",
                    self.devices,
                    images.len()
                )));
            }
        }
        let run_device = |device: usize,
                          legacy: &mut SimArena,
                          sharded: &mut ShardArena,
                          trace: &[HostRequest]|
         -> Result<(SimReport, LatencySamples), String> {
            let image = images.map(|v| v[device]);
            if shard_workers == 0 {
                Ssd::run_pooled_queued_collected_from(
                    legacy,
                    Arc::clone(cfg),
                    make_controller(),
                    lpn_count,
                    trace,
                    queues,
                    image,
                    track,
                )
            } else {
                run_sharded_queued_collected_from(
                    sharded,
                    Arc::clone(cfg),
                    make_controller,
                    lpn_count,
                    trace,
                    queues,
                    image,
                    shard_workers,
                    track,
                )
            }
        };
        let n = self.devices as usize;
        let mut results: Vec<(SimReport, LatencySamples)> = Vec::with_capacity(n);
        if device_workers <= 1 || n <= 1 {
            for (d, ((legacy, sharded), trace)) in self
                .legacy
                .iter_mut()
                .zip(self.sharded.iter_mut())
                .zip(device_traces)
                .enumerate()
            {
                results.push(run_device(d, legacy, sharded, trace).map_err(ConfigError::new)?);
            }
        } else {
            // Work-stealing over ordered slots: any thread count produces the
            // same device-ordered results, so `device_workers` only changes
            // wall-clock time.
            type DeviceRun<'a> = (&'a mut SimArena, &'a mut ShardArena, &'a [HostRequest]);
            type DeviceOut = Result<(SimReport, LatencySamples), String>;
            let work: Vec<Mutex<Option<DeviceRun<'_>>>> = self
                .legacy
                .iter_mut()
                .zip(self.sharded.iter_mut())
                .zip(device_traces)
                .map(|((legacy, sharded), trace)| Mutex::new(Some((legacy, sharded, *trace))))
                .collect();
            let slots: Vec<Mutex<Option<DeviceOut>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..device_workers.min(n) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let (legacy, sharded, trace) = work[i]
                            .lock()
                            .expect("no panics hold the work lock")
                            .take()
                            .expect("each device is claimed exactly once");
                        let out = run_device(i, legacy, sharded, trace);
                        *slots[i].lock().expect("no panics hold the slot lock") = Some(out);
                    });
                }
            });
            for slot in slots {
                let out = slot
                    .into_inner()
                    .expect("no panics hold the slot lock")
                    .expect("every device slot is filled");
                results.push(out.map_err(ConfigError::new)?);
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_util::time::SimTime;

    fn reqs(n: usize) -> Vec<HostRequest> {
        (0..n)
            .map(|i| {
                HostRequest::new(
                    SimTime::from_us(10 * i as u64),
                    crate::request::IoOp::Read,
                    (i as u64 * 37) % 1000,
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn stripe_is_exact_round_robin() {
        let r = reqs(64);
        let routed = route_indices(&r, 4, PlacementPolicy::RoundRobin, 1000);
        for (i, d) in routed.iter().enumerate() {
            assert_eq!(*d, (i % 4) as u32);
        }
    }

    #[test]
    fn every_placement_routes_to_exactly_one_valid_device() {
        let r = reqs(200);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LpnHash,
            PlacementPolicy::HotCold,
        ] {
            for devices in [1, 2, 3, 5] {
                let routed = route_indices(&r, devices, policy, 1000);
                assert_eq!(routed.len(), r.len());
                assert!(routed.iter().all(|&d| d < devices));
            }
        }
    }

    #[test]
    fn hash_is_stable_and_lpn_consistent() {
        let r = reqs(200);
        let a = route_indices(&r, 3, PlacementPolicy::LpnHash, 1000);
        let b = route_indices(&r, 3, PlacementPolicy::LpnHash, 1000);
        assert_eq!(a, b);
        // Same LPN → same device, independent of request index.
        for (i, x) in r.iter().enumerate() {
            for (j, y) in r.iter().enumerate() {
                if x.lpn == y.lpn {
                    assert_eq!(a[i], a[j], "requests {i} and {j} share lpn {}", x.lpn);
                }
            }
        }
    }

    #[test]
    fn tier_splits_hot_and_cold_address_ranges() {
        let hot = HostRequest::new(SimTime::ZERO, crate::request::IoOp::Read, 10, 1);
        let cold = HostRequest::new(SimTime::ZERO, crate::request::IoOp::Read, 900, 1);
        for devices in [2u32, 3, 4, 5] {
            let hot_set = devices.div_ceil(2);
            for index in 0..8 {
                let d = PlacementPolicy::HotCold.route(index, &hot, devices, 1000);
                assert!(d < hot_set, "hot lpn on cold device {d} of {devices}");
                let d = PlacementPolicy::HotCold.route(index, &cold, devices, 1000);
                assert!(d >= hot_set, "cold lpn on hot device {d} of {devices}");
            }
        }
    }

    #[test]
    fn placement_policy_parses_cli_names() {
        assert_eq!(
            PlacementPolicy::parse("rr"),
            Some(PlacementPolicy::RoundRobin)
        );
        assert_eq!(
            PlacementPolicy::parse("hash"),
            Some(PlacementPolicy::LpnHash)
        );
        assert_eq!(
            PlacementPolicy::parse("tier"),
            Some(PlacementPolicy::HotCold)
        );
        assert_eq!(PlacementPolicy::parse("zipf"), None);
        assert_eq!(PlacementPolicy::RoundRobin.name(), "rr");
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::RoundRobin);
    }

    #[test]
    fn device_set_rejects_zero_devices_and_slice_mismatch() {
        assert!(DeviceSet::new(0).is_err());
        let mut set = DeviceSet::new(2).unwrap();
        let cfg = Arc::new(SsdConfig::scaled_for_tests());
        let r = reqs(4);
        let slices: Vec<&[HostRequest]> = vec![&r];
        let err = set
            .run_queued_from(
                &cfg,
                &|| Box::new(crate::readflow::BaselineController::new()),
                1000,
                &slices,
                &HostQueueConfig::single(crate::replay::ReplayMode::OpenLoop),
                None,
                0,
                1,
            )
            .unwrap_err();
        assert!(err.to_string().contains("2 devices"), "{err}");
    }
}
