//! The read-retry policy interface and the regular (baseline) mechanism.
//!
//! The simulator is generic over *how* a read-retry operation is conducted —
//! exactly the degree of freedom the paper's PR²/AR² exploit. A
//! [`RetryController`] is a state machine driven by flash events; it responds
//! with [`ReadAction`]s that the simulator executes against the die, channel,
//! and ECC-decoder resources.
//!
//! This crate ships the [`BaselineController`] (the regular read-retry of
//! Fig. 12(a), used by all prior work the paper compares against); the
//! `rr-core` crate implements PR², AR², PnAR², and the PSO-augmented variants
//! on the same interface.

use crate::request::TxnId;
use rr_flash::calibration::OperatingCondition;
use rr_flash::timing::SensePhases;
use std::collections::HashMap;

/// What the controller wants the simulator to do next for one read.
///
/// Die-occupying actions (`Sense`, `SetFeature`, `Reset`) are executed in
/// order, each starting when the die becomes free; `Transfer` enqueues on the
/// channel immediately; `Complete*` finish the transaction immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAction {
    /// Sense the page at retry-table index `step` (a `PAGE READ` for the
    /// first sensing, a `CACHE READ` for pipelined follow-ups — the
    /// distinction is timing-neutral; both take tR).
    Sense {
        /// Retry-table index to sense with.
        step: u32,
    },
    /// Issue `SET FEATURE`: `Some` installs reduced sensing phases, `None`
    /// restores the default (AR² steps ② and ④).
    SetFeature {
        /// The phases to install, or `None` to restore defaults.
        phases: Option<SensePhases>,
    },
    /// Transfer the sensed data of `step` over the channel and decode it.
    Transfer {
        /// Which step's data to transfer.
        step: u32,
    },
    /// Issue `RESET`, killing any in-flight sensing on the die (PR² uses this
    /// to cancel the speculatively started extra step).
    Reset,
    /// The read is done: data of `step` decoded successfully.
    CompleteSuccess {
        /// The step whose decode succeeded.
        step: u32,
    },
    /// The read failed: the retry table is exhausted (§2.4 "read failure").
    CompleteFailure,
}

/// Immutable facts about a read the controller may use.
///
/// Deliberately *excludes* the ground-truth required retry step — mechanisms
/// must discover it through ECC outcomes, as real firmware does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadContext {
    /// Transaction id.
    pub txn: TxnId,
    /// Global die index the page lives on (PSO clusters by die).
    pub die: u32,
    /// Operating condition of the *block* (P/E cycles, the data's retention
    /// age, temperature) — all of which a real controller tracks (§6.2
    /// footnote 12: wear leveling and refresh already need them).
    pub condition: OperatingCondition,
    /// Whether the page holds cold (preconditioned, long-retention) data.
    pub cold: bool,
    /// Highest retry-table index available.
    pub max_step: u32,
}

/// A read-retry mechanism: a deterministic state machine over flash events.
///
/// One controller instance serves *all* reads of a simulation run (so
/// mechanisms can keep cross-read state, e.g. PSO's per-die V_REF cache);
/// per-read state is keyed by [`TxnId`].
pub trait RetryController {
    /// A read transaction reached the front of its die queue; the die is
    /// free. Must emit at least one die action.
    fn on_start(&mut self, ctx: &ReadContext) -> Vec<ReadAction>;

    /// Sensing for `step` completed (data now in the page/cache register).
    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Vec<ReadAction>;

    /// ECC decode for `step` completed. `success` is whether all errors were
    /// corrected; `margin` is the remaining ECC capability (only meaningful
    /// on success).
    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        margin: u32,
    ) -> Vec<ReadAction>;

    /// A `SET FEATURE` issued by this read completed.
    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Vec<ReadAction>;

    /// A `RESET` issued by this read completed. Usually no further action.
    fn on_reset_done(&mut self, ctx: &ReadContext) -> Vec<ReadAction>;

    /// The transaction is fully finished (after `Complete*`); drop any
    /// per-transaction state. Mechanisms with cross-read state (PSO) update
    /// their caches here via the recorded outcome.
    fn on_end(&mut self, ctx: &ReadContext, successful_step: Option<u32>);

    /// A short display name for reports ("Baseline", "PR2", ...).
    fn name(&self) -> &str;
}

/// The regular read-retry mechanism (Fig. 12(a)): strictly sequential
/// sense → transfer → decode → (on failure) next retry step, with default
/// timing parameters throughout.
#[derive(Debug, Default)]
pub struct BaselineController {
    /// Nothing to remember per read beyond what events carry, but we track
    /// in-flight txns for debug assertions.
    live: HashMap<TxnId, ()>,
}

impl BaselineController {
    /// Creates the baseline controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RetryController for BaselineController {
    fn on_start(&mut self, ctx: &ReadContext) -> Vec<ReadAction> {
        self.live.insert(ctx.txn, ());
        vec![ReadAction::Sense { step: 0 }]
    }

    fn on_sense_done(&mut self, _ctx: &ReadContext, step: u32) -> Vec<ReadAction> {
        vec![ReadAction::Transfer { step }]
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Vec<ReadAction> {
        if success {
            vec![ReadAction::CompleteSuccess { step }]
        } else if step < ctx.max_step {
            vec![ReadAction::Sense { step: step + 1 }]
        } else {
            vec![ReadAction::CompleteFailure]
        }
    }

    fn on_feature_applied(&mut self, _ctx: &ReadContext) -> Vec<ReadAction> {
        unreachable!("baseline never issues SET FEATURE")
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Vec<ReadAction> {
        unreachable!("baseline never issues RESET")
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.live.remove(&ctx.txn);
    }

    fn name(&self) -> &str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(max_step: u32) -> ReadContext {
        ReadContext {
            txn: TxnId(1),
            die: 0,
            condition: OperatingCondition::new(1000.0, 6.0, 30.0),
            cold: true,
            max_step,
        }
    }

    #[test]
    fn baseline_walks_steps_sequentially() {
        let mut b = BaselineController::new();
        let c = ctx(40);
        assert_eq!(b.on_start(&c), vec![ReadAction::Sense { step: 0 }]);
        assert_eq!(
            b.on_sense_done(&c, 0),
            vec![ReadAction::Transfer { step: 0 }]
        );
        // Fail at step 0 → sense step 1.
        assert_eq!(
            b.on_decode_done(&c, 0, false, 0),
            vec![ReadAction::Sense { step: 1 }]
        );
        assert_eq!(
            b.on_sense_done(&c, 1),
            vec![ReadAction::Transfer { step: 1 }]
        );
        // Success at step 1 → complete.
        assert_eq!(
            b.on_decode_done(&c, 1, true, 30),
            vec![ReadAction::CompleteSuccess { step: 1 }]
        );
        b.on_end(&c, Some(1));
    }

    #[test]
    fn baseline_fails_when_table_exhausted() {
        let mut b = BaselineController::new();
        let c = ctx(2);
        b.on_start(&c);
        assert_eq!(
            b.on_decode_done(&c, 2, false, 0),
            vec![ReadAction::CompleteFailure]
        );
    }
}
