//! The read-retry policy interface and the regular (baseline) mechanism.
//!
//! The simulator is generic over *how* a read-retry operation is conducted —
//! exactly the degree of freedom the paper's PR²/AR² exploit. A
//! [`RetryController`] is a state machine driven by flash events; it responds
//! with [`ReadAction`]s that the simulator executes against the die, channel,
//! and ECC-decoder resources.
//!
//! This crate ships the [`BaselineController`] (the regular read-retry of
//! Fig. 12(a), used by all prior work the paper compares against); the
//! `rr-core` crate implements PR², AR², PnAR², and the PSO-augmented variants
//! on the same interface.

use crate::request::TxnId;
use rr_flash::calibration::OperatingCondition;
use rr_flash::timing::SensePhases;

/// What the controller wants the simulator to do next for one read.
///
/// Die-occupying actions (`Sense`, `SetFeature`, `Reset`) are executed in
/// order, each starting when the die becomes free; `Transfer` enqueues on the
/// channel immediately; `Complete*` finish the transaction immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAction {
    /// Sense the page at retry-table index `step` (a `PAGE READ` for the
    /// first sensing, a `CACHE READ` for pipelined follow-ups — the
    /// distinction is timing-neutral; both take tR).
    Sense {
        /// Retry-table index to sense with.
        step: u32,
    },
    /// Issue `SET FEATURE`: `Some` installs reduced sensing phases, `None`
    /// restores the default (AR² steps ② and ④).
    SetFeature {
        /// The phases to install, or `None` to restore defaults.
        phases: Option<SensePhases>,
    },
    /// Transfer the sensed data of `step` over the channel and decode it.
    Transfer {
        /// Which step's data to transfer.
        step: u32,
    },
    /// Issue `RESET`, killing any in-flight sensing on the die (PR² uses this
    /// to cancel the speculatively started extra step).
    Reset,
    /// The read is done: data of `step` decoded successfully.
    CompleteSuccess {
        /// The step whose decode succeeded.
        step: u32,
    },
    /// The read failed: the retry table is exhausted (§2.4 "read failure").
    CompleteFailure,
}

/// A short list of [`ReadAction`]s, inline up to four entries.
///
/// Controllers emit one or two actions per flash event on the hot path;
/// boxing each response in a fresh `Vec` was one of the simulator's dominant
/// allocation sources. The first [`Actions::INLINE`] actions live in the
/// value itself; longer responses (rare) spill to the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actions {
    inline: [ReadAction; Self::INLINE],
    len: u8,
    spill: Vec<ReadAction>,
}

impl Default for Actions {
    fn default() -> Self {
        Self::new()
    }
}

impl Actions {
    /// Number of actions stored without heap allocation.
    pub const INLINE: usize = 4;

    /// The placeholder filling unused inline slots (never observed by
    /// iteration, which is bounded by the length).
    const FILL: ReadAction = ReadAction::CompleteFailure;

    /// An empty action list.
    pub const fn new() -> Self {
        Self {
            inline: [Self::FILL; Self::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// A single-action list.
    pub fn one(a: ReadAction) -> Self {
        let mut s = Self::new();
        s.push(a);
        s
    }

    /// A two-action list.
    pub fn pair(a: ReadAction, b: ReadAction) -> Self {
        let mut s = Self::new();
        s.push(a);
        s.push(b);
        s
    }

    /// Appends an action.
    pub fn push(&mut self, a: ReadAction) {
        if (self.len as usize) < Self::INLINE {
            self.inline[self.len as usize] = a;
            self.len += 1;
        } else {
            self.spill.push(a);
        }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the actions in push order.
    pub fn iter(&self) -> impl Iterator<Item = ReadAction> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .chain(self.spill.iter())
            .copied()
    }

    /// Collects into a `Vec` (test/diagnostic convenience).
    pub fn to_vec(&self) -> Vec<ReadAction> {
        self.iter().collect()
    }
}

impl From<ReadAction> for Actions {
    fn from(a: ReadAction) -> Self {
        Actions::one(a)
    }
}

impl IntoIterator for Actions {
    type Item = ReadAction;
    type IntoIter = std::iter::Chain<
        std::iter::Take<std::array::IntoIter<ReadAction, { Actions::INLINE }>>,
        std::vec::IntoIter<ReadAction>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline
            .into_iter()
            .take(self.len as usize)
            .chain(self.spill)
    }
}

impl FromIterator<ReadAction> for Actions {
    fn from_iter<I: IntoIterator<Item = ReadAction>>(iter: I) -> Self {
        let mut s = Self::new();
        for a in iter {
            s.push(a);
        }
        s
    }
}

/// Dense per-transaction state storage keyed by [`TxnId`].
///
/// Transaction ids are small, dense slab indices (the simulator's
/// transaction pool recycles them), so a flat vector with `Option` slots
/// replaces the hashing a `HashMap<TxnId, T>` would pay on every flash
/// event. The table grows to the highest id ever inserted and keeps its
/// allocation for the whole run.
#[derive(Debug, Clone)]
pub struct TxnTable<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for TxnTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TxnTable<T> {
    /// An empty table.
    pub const fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Inserts state for `id`, returning any previous state.
    pub fn insert(&mut self, id: TxnId, value: T) -> Option<T> {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx].replace(value)
    }

    /// The state for `id`, if present.
    pub fn get(&self, id: TxnId) -> Option<&T> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable state for `id`, if present.
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Removes and returns the state for `id`.
    pub fn remove(&mut self, id: TxnId) -> Option<T> {
        self.slots.get_mut(id.0 as usize).and_then(Option::take)
    }

    /// Whether state exists for `id`.
    pub fn contains(&self, id: TxnId) -> bool {
        self.get(id).is_some()
    }
}

/// Immutable facts about a read the controller may use.
///
/// Deliberately *excludes* the ground-truth required retry step — mechanisms
/// must discover it through ECC outcomes, as real firmware does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadContext {
    /// Transaction id.
    pub txn: TxnId,
    /// Global die index the page lives on (PSO clusters by die).
    pub die: u32,
    /// Operating condition of the *block* (P/E cycles, the data's retention
    /// age, temperature) — all of which a real controller tracks (§6.2
    /// footnote 12: wear leveling and refresh already need them).
    pub condition: OperatingCondition,
    /// Whether the page holds cold (preconditioned, long-retention) data.
    pub cold: bool,
    /// Highest retry-table index available.
    pub max_step: u32,
}

/// A read-retry mechanism: a deterministic state machine over flash events.
///
/// One controller instance serves *all* reads of a simulation run (so
/// mechanisms can keep cross-read state, e.g. PSO's per-die V_REF cache);
/// per-read state is keyed by [`TxnId`].
pub trait RetryController {
    /// A read transaction reached the front of its die queue; the die is
    /// free. Must emit at least one die action.
    fn on_start(&mut self, ctx: &ReadContext) -> Actions;

    /// Sensing for `step` completed (data now in the page/cache register).
    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions;

    /// ECC decode for `step` completed. `success` is whether all errors were
    /// corrected; `margin` is the remaining ECC capability (only meaningful
    /// on success).
    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        margin: u32,
    ) -> Actions;

    /// A `SET FEATURE` issued by this read completed.
    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions;

    /// A `RESET` issued by this read completed. Usually no further action.
    fn on_reset_done(&mut self, ctx: &ReadContext) -> Actions;

    /// The transaction is fully finished (after `Complete*`); drop any
    /// per-transaction state. Mechanisms with cross-read state (PSO) update
    /// their caches here via the recorded outcome.
    fn on_end(&mut self, ctx: &ReadContext, successful_step: Option<u32>);

    /// A short display name for reports ("Baseline", "PR2", ...).
    fn name(&self) -> &str;
}

/// The regular read-retry mechanism (Fig. 12(a)): strictly sequential
/// sense → transfer → decode → (on failure) next retry step, with default
/// timing parameters throughout.
#[derive(Debug, Default)]
pub struct BaselineController {
    /// Nothing to remember per read beyond what events carry, but we track
    /// in-flight txns for debug assertions.
    live: TxnTable<()>,
}

impl BaselineController {
    /// Creates the baseline controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RetryController for BaselineController {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        self.live.insert(ctx.txn, ());
        Actions::one(ReadAction::Sense { step: 0 })
    }

    fn on_sense_done(&mut self, _ctx: &ReadContext, step: u32) -> Actions {
        Actions::one(ReadAction::Transfer { step })
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        if success {
            Actions::one(ReadAction::CompleteSuccess { step })
        } else if step < ctx.max_step {
            Actions::one(ReadAction::Sense { step: step + 1 })
        } else {
            Actions::one(ReadAction::CompleteFailure)
        }
    }

    fn on_feature_applied(&mut self, _ctx: &ReadContext) -> Actions {
        unreachable!("baseline never issues SET FEATURE")
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        unreachable!("baseline never issues RESET")
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.live.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(max_step: u32) -> ReadContext {
        ReadContext {
            txn: TxnId(1),
            die: 0,
            condition: OperatingCondition::new(1000.0, 6.0, 30.0),
            cold: true,
            max_step,
        }
    }

    #[test]
    fn baseline_walks_steps_sequentially() {
        let mut b = BaselineController::new();
        let c = ctx(40);
        assert_eq!(b.on_start(&c).to_vec(), vec![ReadAction::Sense { step: 0 }]);
        assert_eq!(
            b.on_sense_done(&c, 0).to_vec(),
            vec![ReadAction::Transfer { step: 0 }]
        );
        // Fail at step 0 → sense step 1.
        assert_eq!(
            b.on_decode_done(&c, 0, false, 0).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
        assert_eq!(
            b.on_sense_done(&c, 1).to_vec(),
            vec![ReadAction::Transfer { step: 1 }]
        );
        // Success at step 1 → complete.
        assert_eq!(
            b.on_decode_done(&c, 1, true, 30).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 1 }]
        );
        b.on_end(&c, Some(1));
    }

    #[test]
    fn baseline_fails_when_table_exhausted() {
        let mut b = BaselineController::new();
        let c = ctx(2);
        b.on_start(&c);
        assert_eq!(
            b.on_decode_done(&c, 2, false, 0).to_vec(),
            vec![ReadAction::CompleteFailure]
        );
    }

    #[test]
    fn actions_inline_then_spill() {
        let mut a = Actions::new();
        assert!(a.is_empty());
        for step in 0..6 {
            a.push(ReadAction::Sense { step });
        }
        assert_eq!(a.len(), 6);
        let collected = a.to_vec();
        assert_eq!(
            collected,
            (0..6)
                .map(|step| ReadAction::Sense { step })
                .collect::<Vec<_>>()
        );
        let pair = Actions::pair(ReadAction::Reset, ReadAction::CompleteFailure);
        assert_eq!(
            pair.to_vec(),
            vec![ReadAction::Reset, ReadAction::CompleteFailure]
        );
        let one: Actions = ReadAction::Reset.into();
        assert_eq!(one.to_vec(), vec![ReadAction::Reset]);
        let from_iter: Actions = (0..2).map(|step| ReadAction::Sense { step }).collect();
        assert_eq!(from_iter.len(), 2);
    }

    #[test]
    fn txn_table_insert_get_remove() {
        let mut t: TxnTable<u32> = TxnTable::new();
        assert!(!t.contains(TxnId(3)));
        assert_eq!(t.insert(TxnId(3), 30), None);
        assert_eq!(t.insert(TxnId(0), 1), None);
        assert_eq!(t.get(TxnId(3)), Some(&30));
        *t.get_mut(TxnId(3)).unwrap() += 1;
        assert_eq!(t.insert(TxnId(3), 99), Some(31));
        assert_eq!(t.remove(TxnId(3)), Some(99));
        assert_eq!(t.remove(TxnId(3)), None);
        assert_eq!(t.get(TxnId(100)), None);
    }
}
