//! Pluggable garbage-collection preemption/admission policies.
//!
//! Garbage collection competes with host traffic for the same dies: a GC
//! program or erase occupying a die stalls every host read queued behind it,
//! and the closed-loop replay of [`crate::replay`] plus the multi-queue front
//! end of [`crate::hostq`] expose exactly *which* host queue absorbs those
//! stalls. A [`GcPolicy`] decides, at the engine's three GC decision points,
//!
//! 1. whether a **non-critical** GC job may *start* when the FTL hints that a
//!    plane crossed its free-block threshold (`Ssd::maybe_start_gc`);
//! 2. whether a waiting read may *preempt* (suspend) an in-flight GC program
//!    or erase beyond the default suspension-benefit rule
//!    (`Ssd::maybe_suspend`);
//! 3. whether queued GC programs/erases *yield* to host operations on the
//!    die's P2 queue (the issue path of `Ssd::pump_die`).
//!
//! A plane that runs **critically** low on free blocks (≤ 1) always
//! collects, regardless of policy — no policy may starve the FTL of pages.
//! Every GC-induced stall the engine observes is attributed to the host
//! queue that was waiting and reported per queue as
//! [`crate::metrics::GcStalls`].
//!
//! The default [`GcPolicy::Greedy`] reproduces the engine's historical
//! behavior bit-for-bit (`tests/gc_policy.rs` and `tests/hotpath_equiv.rs`
//! pin this).

use crate::config::ConfigError;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Default [`GcPolicy::WindowedTokens`] replenishment window, µs.
pub const DEFAULT_TOKEN_WINDOW_US: u64 = 1_000;

/// When garbage collection may run and who may preempt it.
///
/// # Example
///
/// ```
/// use rr_sim::config::SsdConfig;
/// use rr_sim::gc::GcPolicy;
///
/// // Shield host queue 0: while it has reads outstanding, non-critical GC
/// // is deferred and its reads preempt in-flight GC programs/erases.
/// let cfg = SsdConfig::scaled_for_tests()
///     .with_gc_policy(GcPolicy::QueueShield { queue: 0 });
/// assert_eq!(cfg.gc_policy.name(), "queue-shield");
/// cfg.validate().expect("policy is valid");
/// // The default policy is the engine's historical greedy behavior.
/// assert_eq!(GcPolicy::default(), GcPolicy::Greedy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GcPolicy {
    /// Start GC whenever the FTL hints a plane is at its threshold and let
    /// the default suspension-benefit rule arbitrate reads vs. GC — the
    /// engine's historical behavior, bit-identical to pre-policy output.
    #[default]
    Greedy,
    /// Like [`GcPolicy::Greedy`], but each GC job carries a preemption
    /// budget: while budget remains, a waiting host read suspends the job's
    /// in-flight program/erase *unconditionally* (ignoring the
    /// minimum-benefit rule); once the budget is spent, the job's operations
    /// run to completion and can no longer be suspended at all.
    ReadPreempt {
        /// Unconditional preemptions granted per GC job (≥ 1).
        budget: u32,
    },
    /// Rate-limit GC under load: starting a non-critical GC job consumes a
    /// token from a bucket of `tokens` replenished every `window_us`
    /// microseconds of simulated time; when the bucket is dry, the job is
    /// deferred until a later allocation re-hints the plane.
    WindowedTokens {
        /// Non-critical GC jobs allowed per window (≥ 1).
        tokens: u32,
        /// Replenishment window in µs of simulated time (≥ 1).
        window_us: u64,
    },
    /// Shield a latency-critical host queue: while `queue` has admitted
    /// reads outstanding, non-critical GC jobs are deferred, the shielded
    /// queue's reads preempt in-flight GC programs/erases unconditionally,
    /// and queued GC operations yield to host operations on each die.
    QueueShield {
        /// Index of the shielded host submission queue. An index beyond the
        /// front end's queue count disables the shield (the policy then
        /// behaves like [`GcPolicy::Greedy`]).
        queue: u16,
    },
}

impl GcPolicy {
    /// The policy's CLI / display name.
    pub fn name(&self) -> &'static str {
        match self {
            GcPolicy::Greedy => "greedy",
            GcPolicy::ReadPreempt { .. } => "read-preempt",
            GcPolicy::WindowedTokens { .. } => "windowed-tokens",
            GcPolicy::QueueShield { .. } => "queue-shield",
        }
    }

    /// Builds a policy from its CLI name and the `--gc-budget` knob, whose
    /// meaning is per policy: the preemption budget per job
    /// (`read-preempt`, default 4), the tokens per window
    /// (`windowed-tokens`, default 8, window [`DEFAULT_TOKEN_WINDOW_US`]),
    /// or the shielded queue index (`queue-shield`, default 0).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an unknown policy name, a budget the
    /// policy cannot use (`greedy`), or an out-of-range budget value.
    pub fn parse(name: &str, budget: Option<u32>) -> Result<Self, ConfigError> {
        let policy = match name {
            "greedy" => {
                if budget.is_some() {
                    return Err(ConfigError::new(
                        "--gc-budget has no effect under the greedy GC policy",
                    ));
                }
                GcPolicy::Greedy
            }
            "read-preempt" => GcPolicy::ReadPreempt {
                budget: budget.unwrap_or(4),
            },
            "windowed-tokens" => GcPolicy::WindowedTokens {
                tokens: budget.unwrap_or(8),
                window_us: DEFAULT_TOKEN_WINDOW_US,
            },
            "queue-shield" => {
                let queue = budget.unwrap_or(0);
                if queue > u16::MAX as u32 {
                    return Err(ConfigError::new(format!(
                        "queue-shield queue index {queue} exceeds {}",
                        u16::MAX
                    )));
                }
                GcPolicy::QueueShield {
                    queue: queue as u16,
                }
            }
            other => {
                return Err(ConfigError::new(format!(
                    "unknown GC policy '{other}' \
                     (expected greedy, read-preempt, windowed-tokens, or queue-shield)"
                )))
            }
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first zero-valued knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            GcPolicy::Greedy | GcPolicy::QueueShield { .. } => Ok(()),
            GcPolicy::ReadPreempt { budget } => {
                if budget < 1 {
                    return Err(ConfigError::new(
                        "read-preempt budget must be at least 1 preemption per GC job",
                    ));
                }
                Ok(())
            }
            GcPolicy::WindowedTokens { tokens, window_us } => {
                if tokens < 1 {
                    return Err(ConfigError::new(
                        "windowed-tokens requires at least 1 token per window",
                    ));
                }
                if window_us < 1 {
                    return Err(ConfigError::new(
                        "windowed-tokens window must be at least 1 µs",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Unconditional preemptions each new GC job is granted (0 for policies
    /// without a per-job budget).
    pub(crate) fn job_preempt_budget(&self) -> u32 {
        match *self {
            GcPolicy::ReadPreempt { budget } => budget,
            _ => 0,
        }
    }

    /// The shielded queue, if this policy designates one.
    pub(crate) fn shield_queue(&self) -> Option<u16> {
        match *self {
            GcPolicy::QueueShield { queue } => Some(queue),
            _ => None,
        }
    }
}

/// Deterministic token bucket backing [`GcPolicy::WindowedTokens`]: `used`
/// counts the jobs started in the window beginning at `window_start`. The
/// window advances lazily (on the first take at or past its end), so the
/// bucket needs no timer events of its own.
#[derive(Debug, Clone, Default)]
pub(crate) struct GcThrottle {
    window_start: SimTime,
    used: u32,
}

impl GcThrottle {
    /// Returns the bucket to its initial (full, window-at-zero) state.
    pub(crate) fn reset(&mut self) {
        *self = Self::default();
    }

    /// Takes one token at simulated time `now` under a `tokens`-per-`window`
    /// budget; `false` means the bucket is dry for the current window.
    pub(crate) fn try_take(&mut self, now: SimTime, tokens: u32, window: SimTime) -> bool {
        if now >= self.window_start + window {
            self.window_start = now;
            self.used = 0;
        }
        if self.used < tokens {
            self.used += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_greedy() {
        assert_eq!(GcPolicy::default(), GcPolicy::Greedy);
        assert_eq!(GcPolicy::Greedy.job_preempt_budget(), 0);
        assert_eq!(GcPolicy::Greedy.shield_queue(), None);
    }

    #[test]
    fn parse_builds_each_policy_with_budget_defaults() {
        assert_eq!(GcPolicy::parse("greedy", None), Ok(GcPolicy::Greedy));
        assert_eq!(
            GcPolicy::parse("read-preempt", None),
            Ok(GcPolicy::ReadPreempt { budget: 4 })
        );
        assert_eq!(
            GcPolicy::parse("read-preempt", Some(2)),
            Ok(GcPolicy::ReadPreempt { budget: 2 })
        );
        assert_eq!(
            GcPolicy::parse("windowed-tokens", Some(3)),
            Ok(GcPolicy::WindowedTokens {
                tokens: 3,
                window_us: DEFAULT_TOKEN_WINDOW_US
            })
        );
        assert_eq!(
            GcPolicy::parse("queue-shield", Some(1)),
            Ok(GcPolicy::QueueShield { queue: 1 })
        );
        assert_eq!(
            GcPolicy::parse("queue-shield", None),
            Ok(GcPolicy::QueueShield { queue: 0 })
        );
    }

    #[test]
    fn parse_rejects_unknown_names_and_unusable_budgets() {
        assert!(GcPolicy::parse("eager", None).is_err());
        assert!(GcPolicy::parse("greedy", Some(4)).is_err());
        assert!(GcPolicy::parse("read-preempt", Some(0)).is_err());
        assert!(GcPolicy::parse("windowed-tokens", Some(0)).is_err());
        assert!(GcPolicy::parse("queue-shield", Some(u16::MAX as u32 + 1)).is_err());
    }

    #[test]
    fn validation_rejects_zero_knobs() {
        assert!(GcPolicy::Greedy.validate().is_ok());
        assert!(GcPolicy::ReadPreempt { budget: 0 }.validate().is_err());
        assert!(GcPolicy::WindowedTokens {
            tokens: 0,
            window_us: 10
        }
        .validate()
        .is_err());
        assert!(GcPolicy::WindowedTokens {
            tokens: 1,
            window_us: 0
        }
        .validate()
        .is_err());
        assert!(GcPolicy::QueueShield { queue: 7 }.validate().is_ok());
    }

    #[test]
    fn throttle_grants_tokens_per_window_and_replenishes() {
        let mut t = GcThrottle::default();
        let window = SimTime::from_us(100);
        assert!(t.try_take(SimTime::ZERO, 2, window));
        assert!(t.try_take(SimTime::from_us(10), 2, window));
        // Bucket dry for the rest of the window.
        assert!(!t.try_take(SimTime::from_us(50), 2, window));
        assert!(!t.try_take(SimTime::from_us(99), 2, window));
        // A take at or past the window end replenishes.
        assert!(t.try_take(SimTime::from_us(100), 2, window));
        assert!(t.try_take(SimTime::from_us(100), 2, window));
        assert!(!t.try_take(SimTime::from_us(150), 2, window));
        t.reset();
        assert!(t.try_take(SimTime::ZERO, 1, window));
    }
}
