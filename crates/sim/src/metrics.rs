//! Simulation metrics and the per-run report.

pub use rr_util::stats::LatencySummary;
use rr_util::stats::{Histogram, OnlineStats, Percentiles};
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Aggregated results of one simulation run.
///
/// Tail latencies are reported per request class — reads, writes, and
/// *retried* reads (host reads that needed at least one retry step) — as
/// [`LatencySummary`] quantiles. A class that recorded no requests reports
/// `None` quantiles rather than a fabricated `0.0` tail.
///
/// `PartialEq` compares every field exactly (statistics included), so two
/// reports are equal only if the runs behaved identically — the determinism
/// regression tests rely on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// Mechanism name (from the retry controller).
    pub mechanism: String,
    /// Response-time statistics over all host requests (µs).
    pub response_us: OnlineStats,
    /// Response-time statistics over host *reads* only (µs).
    pub read_response_us: OnlineStats,
    /// Response-time statistics over host *writes* only (µs).
    pub write_response_us: OnlineStats,
    /// Latency distribution (p50/p95/p99/p99.9, µs) of host reads.
    pub read_latency: LatencySummary,
    /// Latency distribution of host writes.
    pub write_latency: LatencySummary,
    /// Latency distribution of host reads that required ≥ 1 retry step —
    /// the population whose tail the paper's mechanisms attack.
    pub retried_read_latency: LatencySummary,
    /// Histogram of retry steps per host read (Fig. 5's quantity, observed).
    pub retry_steps: Histogram,
    /// Number of host requests completed.
    pub requests_completed: u64,
    /// Number of host reads that exhausted the retry table (read failures).
    pub read_failures: u64,
    /// Total page sensings issued (including speculative ones).
    pub senses: u64,
    /// Sensings killed by `RESET` (PR²'s speculative overshoot).
    pub resets: u64,
    /// `SET FEATURE` commands issued (AR²'s timing changes).
    pub set_features: u64,
    /// Program/erase suspensions performed.
    pub suspensions: u64,
    /// GC victim blocks collected.
    pub gc_collections: u64,
    /// Discrete events the simulator processed during the run — the
    /// denominator-free work measure `repro perf` divides by wall-clock to
    /// report events/sec.
    pub events_processed: u64,
    /// Total simulated time at the last completion.
    pub makespan: SimTime,
    /// Per-host-queue latency distributions (one entry per submission queue
    /// of the front end; a single entry, matching the aggregate classes, for
    /// plain single-generator replays). Response times include any
    /// submission-queue wait, so arbitration skew between queues is visible
    /// here while the aggregate classes above blend it away.
    pub per_queue: Vec<QueueLatency>,
}

/// One host queue's slice of a run: how many of its requests completed and
/// their read/write latency distributions (µs, measured from submission —
/// host-side queueing included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueueLatency {
    /// Host requests of this queue that completed.
    pub completed: u64,
    /// Read latency distribution of this queue.
    pub reads: LatencySummary,
    /// Write latency distribution of this queue.
    pub writes: LatencySummary,
    /// GC-induced stalls absorbed by this queue (see [`GcStalls`]).
    pub gc: GcStalls,
}

/// GC-induced stalls attributed to one host queue: every time garbage
/// collection delayed (or was delayed by) this queue's reads, the engine
/// records it here, so multi-queue runs show *which* queue absorbs GC
/// interference instead of blending it into the aggregate tail.
///
/// The stall definitions (all attributed to the queue of the waiting read):
///
/// * **suspension** — an in-flight GC program/erase was suspended for this
///   queue's read under the default suspension-benefit rule;
/// * **preemption** — a policy-forced suspension beyond the default rule
///   ([`crate::gc::GcPolicy::ReadPreempt`] budget or
///   [`crate::gc::GcPolicy::QueueShield`] shield);
/// * **wait** — this queue's read enqueued behind a GC die operation it
///   could not suspend and had to wait out;
/// * **deferral** — a non-critical GC job start was deferred on this
///   queue's behalf (shielding) or charged to it (token rate-limiting at
///   the queue's triggering write);
/// * **`stall_us`** — total attributed stall time: the suspension latency
///   per (forced) suspension plus the residual busy time per wait.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GcStalls {
    /// GC programs/erases suspended for this queue's reads (default rule).
    pub suspensions: u64,
    /// Policy-forced suspensions beyond the default benefit rule.
    pub preemptions: u64,
    /// Reads that enqueued behind an unsuspendable GC die operation.
    pub waits: u64,
    /// Non-critical GC job starts deferred on this queue's account.
    pub deferrals: u64,
    /// Total attributed stall time, µs.
    pub stall_us: f64,
}

impl GcStalls {
    /// Stall events this queue actually absorbed (suspensions + preemptions
    /// + waits; deferrals are avoided stalls, not absorbed ones).
    pub fn stalls(&self) -> u64 {
        self.suspensions + self.preemptions + self.waits
    }
}

impl SimReport {
    /// Creates an empty report for a mechanism.
    pub fn new(mechanism: &str) -> Self {
        Self {
            mechanism: mechanism.to_string(),
            ..Self::default()
        }
    }

    /// Average response time in µs over all host requests.
    pub fn avg_response_us(&self) -> f64 {
        self.response_us.mean()
    }

    /// Average read response time in µs.
    pub fn avg_read_response_us(&self) -> f64 {
        self.read_response_us.mean()
    }

    /// 99th-percentile read response time in µs, or `None` when the run
    /// completed no reads (an empty class has no tail).
    pub fn read_p99_us(&self) -> Option<f64> {
        self.read_latency.p99
    }

    /// Average retry steps per host read.
    pub fn avg_retry_steps(&self) -> f64 {
        self.retry_steps.mean()
    }

    /// Throughput in thousands of I/O operations per second of simulated
    /// time (0 when the run completed nothing).
    pub fn kiops(&self) -> f64 {
        let us = self.makespan.as_us_f64();
        if us <= 0.0 {
            0.0
        } else {
            self.requests_completed as f64 / us * 1_000.0
        }
    }
}

/// Raw per-class latency samples of one device run (µs), extracted alongside
/// the summarized [`SimReport`]. The array layer concatenates these across
/// devices (in device order) to compute *exact* array-level quantiles — the
/// summarized per-device p99s cannot be merged, only the samples can.
#[derive(Debug, Clone, Default)]
pub(crate) struct LatencySamples {
    /// Host-read response times.
    pub(crate) reads: Vec<f64>,
    /// Host-write response times.
    pub(crate) writes: Vec<f64>,
    /// Response times of reads that needed ≥ 1 retry step.
    pub(crate) retried_reads: Vec<f64>,
    /// Per-trace-request `(response µs, retried)` pairs, indexed by the
    /// request's position in the device's sub-trace. Empty unless the run
    /// was collected with per-request tracking — the redundancy layer needs
    /// it to match a logical request's copies across devices, while plain
    /// array merges skip the allocation entirely.
    pub(crate) by_request: Vec<(f64, bool)>,
}

/// Builder accumulating metrics during a run.
///
/// Deliberately *not* `Default`: a default-constructed collector would carry
/// a zero-bin retry histogram in which every recorded step count lands in
/// overflow. [`MetricsCollector::new`] sizes the histogram to the retry-table
/// depth.
#[derive(Debug)]
pub struct MetricsCollector {
    pub(crate) response_us: OnlineStats,
    pub(crate) read_response_us: OnlineStats,
    pub(crate) write_response_us: OnlineStats,
    pub(crate) read_latencies: Percentiles,
    pub(crate) write_latencies: Percentiles,
    pub(crate) retried_read_latencies: Percentiles,
    pub(crate) per_queue: Vec<QueueCollector>,
    pub(crate) retry_steps: Histogram,
    pub(crate) requests_completed: u64,
    pub(crate) read_failures: u64,
    pub(crate) senses: u64,
    pub(crate) resets: u64,
    pub(crate) set_features: u64,
    pub(crate) suspensions: u64,
    pub(crate) gc_collections: u64,
    pub(crate) events_processed: u64,
    pub(crate) makespan: SimTime,
    pub(crate) by_request: Vec<(f64, bool)>,
}

/// Per-host-queue accumulator behind [`QueueLatency`].
#[derive(Debug, Default)]
pub(crate) struct QueueCollector {
    completed: u64,
    reads: Percentiles,
    writes: Percentiles,
    gc: GcStalls,
}

impl MetricsCollector {
    /// Creates an empty collector for `queues` host queues. The retry
    /// histogram is sized to the retry table's depth (`max_retry_steps` bins
    /// plus the no-retry bin and one beyond), so every recordable step count
    /// has a real bin.
    pub fn new(max_retry_steps: u32, queues: usize) -> Self {
        Self {
            response_us: OnlineStats::new(),
            read_response_us: OnlineStats::new(),
            write_response_us: OnlineStats::new(),
            read_latencies: Percentiles::new(),
            write_latencies: Percentiles::new(),
            retried_read_latencies: Percentiles::new(),
            per_queue: (0..queues).map(|_| QueueCollector::default()).collect(),
            retry_steps: Histogram::new(max_retry_steps as usize + 2),
            requests_completed: 0,
            read_failures: 0,
            senses: 0,
            resets: 0,
            set_features: 0,
            suspensions: 0,
            gc_collections: 0,
            events_processed: 0,
            makespan: SimTime::ZERO,
            by_request: Vec::new(),
        }
    }

    /// Enables per-request tracking for a trace of `total` requests:
    /// [`MetricsCollector::record_indexed`] slots land at their trace index.
    /// Without this call, `record_indexed` is a no-op and the run's metrics
    /// are bit-identical to an untracked run.
    pub fn track_requests(&mut self, total: usize) {
        self.by_request = vec![(0.0, false); total];
    }

    /// Records the response of the request at trace index `index` (only
    /// meaningful after [`MetricsCollector::track_requests`]; a no-op
    /// otherwise).
    pub fn record_indexed(&mut self, index: u32, response: SimTime, retried: bool) {
        if self.by_request.is_empty() {
            return;
        }
        self.by_request[index as usize] = (response.as_us_f64(), retried);
    }

    /// Records a completed host request of host queue `queue`. `retried`
    /// marks a read whose pages needed at least one retry step (ignored for
    /// writes).
    pub fn record_request(
        &mut self,
        queue: u16,
        is_read: bool,
        retried: bool,
        response: SimTime,
        now: SimTime,
    ) {
        let us = response.as_us_f64();
        self.response_us.push(us);
        let q = &mut self.per_queue[queue as usize];
        q.completed += 1;
        if is_read {
            self.read_response_us.push(us);
            self.read_latencies.push(us);
            q.reads.push(us);
            if retried {
                self.retried_read_latencies.push(us);
            }
        } else {
            self.write_response_us.push(us);
            self.write_latencies.push(us);
            q.writes.push(us);
        }
        self.requests_completed += 1;
        self.makespan = self.makespan.max(now);
    }

    /// Records the retry-step count of one completed host read.
    pub fn record_retry_steps(&mut self, steps: u32) {
        self.retry_steps.record(steps as usize);
    }

    /// Records a GC program/erase suspended for a read of host queue
    /// `queue`, stalling it for `stall_us`; `forced` marks a policy-granted
    /// preemption beyond the default suspension-benefit rule.
    pub fn record_gc_suspension(&mut self, queue: u16, stall_us: f64, forced: bool) {
        let gc = &mut self.per_queue[queue as usize].gc;
        if forced {
            gc.preemptions += 1;
        } else {
            gc.suspensions += 1;
        }
        gc.stall_us += stall_us;
    }

    /// Records a read of host queue `queue` enqueueing behind a GC die
    /// operation it cannot suspend, waiting out `stall_us` of residual busy
    /// time.
    pub fn record_gc_wait(&mut self, queue: u16, stall_us: f64) {
        let gc = &mut self.per_queue[queue as usize].gc;
        gc.waits += 1;
        gc.stall_us += stall_us;
    }

    /// Records a non-critical GC job start deferred on host queue `queue`'s
    /// account.
    pub fn record_gc_deferral(&mut self, queue: u16) {
        self.per_queue[queue as usize].gc.deferrals += 1;
    }

    /// Finalizes into a report *and* hands back the raw latency samples the
    /// summary was computed from, for array-level merging. The report is
    /// bit-identical to what [`MetricsCollector::finish`] would produce.
    pub(crate) fn finish_with_samples(mut self, mechanism: &str) -> (SimReport, LatencySamples) {
        let samples = LatencySamples {
            reads: self.read_latencies.samples().to_vec(),
            writes: self.write_latencies.samples().to_vec(),
            retried_reads: self.retried_read_latencies.samples().to_vec(),
            by_request: std::mem::take(&mut self.by_request),
        };
        (self.finish(mechanism), samples)
    }

    /// Finalizes into a report.
    pub fn finish(mut self, mechanism: &str) -> SimReport {
        SimReport {
            mechanism: mechanism.to_string(),
            response_us: self.response_us,
            read_response_us: self.read_response_us,
            write_response_us: self.write_response_us,
            read_latency: self.read_latencies.summary(),
            write_latency: self.write_latencies.summary(),
            retried_read_latency: self.retried_read_latencies.summary(),
            per_queue: self
                .per_queue
                .iter_mut()
                .map(|q| QueueLatency {
                    completed: q.completed,
                    reads: q.reads.summary(),
                    writes: q.writes.summary(),
                    gc: q.gc,
                })
                .collect(),
            retry_steps: self.retry_steps,
            requests_completed: self.requests_completed,
            read_failures: self.read_failures,
            senses: self.senses,
            resets: self.resets,
            set_features: self.set_features,
            suspensions: self.suspensions,
            gc_collections: self.gc_collections,
            events_processed: self.events_processed,
            makespan: self.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_by_direction() {
        let mut m = MetricsCollector::new(40, 1);
        m.record_request(0, true, false, SimTime::from_us(100), SimTime::from_us(100));
        m.record_request(0, true, true, SimTime::from_us(300), SimTime::from_us(400));
        m.record_request(
            0,
            false,
            false,
            SimTime::from_us(700),
            SimTime::from_us(1100),
        );
        m.record_retry_steps(3);
        m.record_retry_steps(5);
        let r = m.finish("Test");
        assert_eq!(r.mechanism, "Test");
        assert_eq!(r.requests_completed, 3);
        assert_eq!(r.avg_read_response_us(), 200.0);
        assert_eq!(r.write_response_us.mean(), 700.0);
        assert!((r.avg_response_us() - (100.0 + 300.0 + 700.0) / 3.0).abs() < 1e-9);
        assert_eq!(r.avg_retry_steps(), 4.0);
        assert_eq!(r.makespan, SimTime::from_us(1100));
        // Per-class distributions: 2 reads, 1 write, 1 retried read.
        assert_eq!(r.read_latency.count, 2);
        assert_eq!(r.write_latency.count, 1);
        assert_eq!(r.write_latency.p99, Some(700.0));
        assert_eq!(r.retried_read_latency.count, 1);
        assert_eq!(r.retried_read_latency.p50, Some(300.0));
    }

    #[test]
    fn p99_reflects_tail() {
        let mut m = MetricsCollector::new(40, 1);
        for i in 1..=100 {
            m.record_request(0, true, false, SimTime::from_us(i), SimTime::from_us(i));
        }
        let r = m.finish("T");
        assert_eq!(r.read_p99_us(), Some(99.0));
        assert_eq!(r.read_latency.p999, Some(100.0));
    }

    #[test]
    fn classes_without_requests_have_no_tail() {
        // A write-only run must NOT fabricate a 0 µs read tail.
        let mut m = MetricsCollector::new(40, 1);
        m.record_request(
            0,
            false,
            false,
            SimTime::from_us(700),
            SimTime::from_us(700),
        );
        let r = m.finish("T");
        assert_eq!(r.read_p99_us(), None);
        assert_eq!(r.read_latency.count, 0);
        assert_eq!(r.retried_read_latency.p999, None);
        assert_eq!(r.write_latency.p50, Some(700.0));
    }

    #[test]
    fn gc_stalls_attribute_to_their_queue() {
        let mut m = MetricsCollector::new(40, 2);
        m.record_gc_suspension(0, 20.0, false);
        m.record_gc_suspension(0, 20.0, true);
        m.record_gc_wait(1, 350.0);
        m.record_gc_deferral(1);
        m.record_gc_deferral(1);
        let r = m.finish("T");
        let q0 = &r.per_queue[0].gc;
        let q1 = &r.per_queue[1].gc;
        assert_eq!(q0.suspensions, 1);
        assert_eq!(q0.preemptions, 1);
        assert_eq!(q0.waits, 0);
        assert_eq!(q0.stalls(), 2);
        assert!((q0.stall_us - 40.0).abs() < 1e-12);
        assert_eq!(q1.waits, 1);
        assert_eq!(q1.deferrals, 2);
        assert_eq!(q1.stalls(), 1);
        assert!((q1.stall_us - 350.0).abs() < 1e-12);
    }

    #[test]
    fn kiops_counts_completions_per_second() {
        let mut m = MetricsCollector::new(40, 1);
        for i in 1..=1000u64 {
            m.record_request(
                0,
                true,
                false,
                SimTime::from_us(100),
                SimTime::from_us(i * 1_000),
            );
        }
        let r = m.finish("T");
        // 1000 requests over 1 s of simulated time = 1 kIOPS.
        assert!((r.kiops() - 1.0).abs() < 1e-9);
        assert_eq!(SimReport::new("x").kiops(), 0.0);
    }
}
