//! Simulation metrics and the per-run report.

use rr_util::stats::{Histogram, OnlineStats, Percentiles};
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Aggregated results of one simulation run.
///
/// `PartialEq` compares every field exactly (statistics included), so two
/// reports are equal only if the runs behaved identically — the determinism
/// regression tests rely on this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// Mechanism name (from the retry controller).
    pub mechanism: String,
    /// Response-time statistics over all host requests (µs).
    pub response_us: OnlineStats,
    /// Response-time statistics over host *reads* only (µs).
    pub read_response_us: OnlineStats,
    /// Response-time statistics over host *writes* only (µs).
    pub write_response_us: OnlineStats,
    /// 99th-percentile read response time (µs).
    pub read_p99_us: f64,
    /// Histogram of retry steps per host read (Fig. 5's quantity, observed).
    pub retry_steps: Histogram,
    /// Number of host requests completed.
    pub requests_completed: u64,
    /// Number of host reads that exhausted the retry table (read failures).
    pub read_failures: u64,
    /// Total page sensings issued (including speculative ones).
    pub senses: u64,
    /// Sensings killed by `RESET` (PR²'s speculative overshoot).
    pub resets: u64,
    /// `SET FEATURE` commands issued (AR²'s timing changes).
    pub set_features: u64,
    /// Program/erase suspensions performed.
    pub suspensions: u64,
    /// GC victim blocks collected.
    pub gc_collections: u64,
    /// Total simulated time at the last completion.
    pub makespan: SimTime,
}

impl SimReport {
    /// Creates an empty report for a mechanism.
    pub fn new(mechanism: &str) -> Self {
        Self {
            mechanism: mechanism.to_string(),
            ..Self::default()
        }
    }

    /// Average response time in µs over all host requests.
    pub fn avg_response_us(&self) -> f64 {
        self.response_us.mean()
    }

    /// Average read response time in µs.
    pub fn avg_read_response_us(&self) -> f64 {
        self.read_response_us.mean()
    }

    /// Average retry steps per host read.
    pub fn avg_retry_steps(&self) -> f64 {
        self.retry_steps.mean()
    }
}

/// Builder accumulating metrics during a run.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    pub(crate) response_us: OnlineStats,
    pub(crate) read_response_us: OnlineStats,
    pub(crate) write_response_us: OnlineStats,
    pub(crate) read_latencies: Percentiles,
    pub(crate) retry_steps: Histogram,
    pub(crate) requests_completed: u64,
    pub(crate) read_failures: u64,
    pub(crate) senses: u64,
    pub(crate) resets: u64,
    pub(crate) set_features: u64,
    pub(crate) suspensions: u64,
    pub(crate) gc_collections: u64,
    pub(crate) makespan: SimTime,
}

impl MetricsCollector {
    /// Creates an empty collector (retry histogram sized to the table depth).
    pub fn new(max_retry_steps: u32) -> Self {
        Self {
            retry_steps: Histogram::new(max_retry_steps as usize + 2),
            ..Self::default()
        }
    }

    /// Records a completed host request.
    pub fn record_request(&mut self, is_read: bool, response: SimTime, now: SimTime) {
        let us = response.as_us_f64();
        self.response_us.push(us);
        if is_read {
            self.read_response_us.push(us);
            self.read_latencies.push(us);
        } else {
            self.write_response_us.push(us);
        }
        self.requests_completed += 1;
        self.makespan = self.makespan.max(now);
    }

    /// Records the retry-step count of one completed host read.
    pub fn record_retry_steps(&mut self, steps: u32) {
        self.retry_steps.record(steps as usize);
    }

    /// Finalizes into a report.
    pub fn finish(mut self, mechanism: &str) -> SimReport {
        let read_p99_us = self.read_latencies.quantile(0.99).unwrap_or(0.0);
        SimReport {
            mechanism: mechanism.to_string(),
            response_us: self.response_us,
            read_response_us: self.read_response_us,
            write_response_us: self.write_response_us,
            read_p99_us,
            retry_steps: self.retry_steps,
            requests_completed: self.requests_completed,
            read_failures: self.read_failures,
            senses: self.senses,
            resets: self.resets,
            set_features: self.set_features,
            suspensions: self.suspensions,
            gc_collections: self.gc_collections,
            makespan: self.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_by_direction() {
        let mut m = MetricsCollector::new(40);
        m.record_request(true, SimTime::from_us(100), SimTime::from_us(100));
        m.record_request(true, SimTime::from_us(300), SimTime::from_us(400));
        m.record_request(false, SimTime::from_us(700), SimTime::from_us(1100));
        m.record_retry_steps(3);
        m.record_retry_steps(5);
        let r = m.finish("Test");
        assert_eq!(r.mechanism, "Test");
        assert_eq!(r.requests_completed, 3);
        assert_eq!(r.avg_read_response_us(), 200.0);
        assert_eq!(r.write_response_us.mean(), 700.0);
        assert!((r.avg_response_us() - (100.0 + 300.0 + 700.0) / 3.0).abs() < 1e-9);
        assert_eq!(r.avg_retry_steps(), 4.0);
        assert_eq!(r.makespan, SimTime::from_us(1100));
    }

    #[test]
    fn p99_reflects_tail() {
        let mut m = MetricsCollector::new(40);
        for i in 1..=100 {
            m.record_request(true, SimTime::from_us(i), SimTime::from_us(i));
        }
        let r = m.finish("T");
        assert!(r.read_p99_us >= 99.0);
    }
}
