//! NVMe-style multi-queue host front end: per-core submission queues with
//! device-side round-robin / weighted-round-robin arbitration.
//!
//! The single load generator of [`crate::replay`] models *one* host thread. Real
//! NVMe hosts run one submission/completion queue pair per core, and the
//! device controller fetches commands from those queues under an arbitration
//! policy — which means requests can queue up *host-side* before the device
//! ever sees them, and that waiting is part of the latency the host observes.
//! This module adds that layer:
//!
//! * [`HostQueueConfig`] — the queue topology: N queues, each replaying its
//!   stripe of the trace under its own [`ReplayMode`] (open-loop,
//!   rate-scaled, or closed-loop per queue) with an arbitration weight;
//! * a device-side [`Arbiter`] (see [`crate::scheduler`]) — round-robin or
//!   weighted-round-robin with a configurable burst size;
//! * an optional device **admission window** — the maximum number of
//!   requests the device keeps in flight across all queues. A finite window
//!   is what makes arbitration bite: submissions beyond it wait in their
//!   submission queue, and that wait shows up in the per-queue tail
//!   distributions ([`crate::metrics::SimReport::per_queue`]).
//!
//! Requests are striped round-robin over the queues (request *i* → queue
//! *i mod N*), preserving trace order within each queue; same-tick admissions
//! therefore drain each queue's backlog in trace order, and the arbiter's
//! deterministic rotation fixes the cross-queue order, so runs are
//! bit-reproducible regardless of worker threads.
//!
//! A single-queue round-robin configuration with no window degenerates to
//! exactly the plain [`ReplayMode`] replay — `tests/hotpath_equiv.rs` asserts
//! the reports are bit-identical.
//!
//! # Example
//!
//! ```
//! use rr_sim::config::{ArbPolicy, SsdConfig};
//! use rr_sim::hostq::HostQueueConfig;
//! use rr_sim::readflow::BaselineController;
//! use rr_sim::replay::ReplayMode;
//! use rr_sim::request::{HostRequest, IoOp};
//! use rr_sim::ssd::Ssd;
//! use rr_util::time::SimTime;
//!
//! let cfg = SsdConfig::scaled_for_tests();
//! let trace: Vec<_> = (0..16)
//!     .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i * 11, 1))
//!     .collect();
//! // Two closed-loop queues, WRR 3:1, at most 4 requests in the device.
//! let queues = HostQueueConfig::uniform(2, ReplayMode::closed_loop(4))
//!     .with_arb(ArbPolicy::WeightedRoundRobin)
//!     .with_weights(&[3, 1])
//!     .with_window(4);
//! let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 1_000).unwrap();
//! let report = ssd.run_with_queues(&trace, &queues);
//! assert_eq!(report.requests_completed, 16);
//! assert_eq!(report.per_queue.len(), 2);
//! assert_eq!(report.per_queue[0].completed, 8);
//! ```

use crate::config::{ArbPolicy, ConfigError};
use crate::replay::{LoadGenerator, ReplayMode};
use crate::request::{HostRequest, ReqId};
use crate::scheduler::Arbiter;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One submission/completion queue pair of the host front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSpec {
    /// How this queue's stripe of the trace is replayed.
    pub mode: ReplayMode,
    /// Weighted-round-robin weight (≥ 1; ignored under plain round-robin).
    pub weight: u32,
}

impl QueueSpec {
    /// A weight-1 queue replaying under `mode`.
    pub fn new(mode: ReplayMode) -> Self {
        Self { mode, weight: 1 }
    }
}

/// Topology and arbitration knobs of the multi-queue host front end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostQueueConfig {
    /// The submission queues; request *i* of the trace goes to queue
    /// *i mod N*.
    pub queues: Vec<QueueSpec>,
    /// How the device drains the queues.
    pub arb: ArbPolicy,
    /// Consecutive commands fetched from one queue per arbitration credit
    /// (≥ 1); weighted queues get `weight × burst` per turn.
    pub burst: u32,
    /// Device-wide cap on in-flight requests (`None` = unbounded). Finite
    /// windows make submissions wait host-side, which is what surfaces
    /// host queueing in the per-queue tails.
    pub window: Option<u32>,
}

impl HostQueueConfig {
    /// The degenerate single-queue front end: one queue, round-robin, no
    /// window — bit-identical to replaying `mode` directly.
    pub fn single(mode: ReplayMode) -> Self {
        Self {
            queues: vec![QueueSpec::new(mode)],
            arb: ArbPolicy::RoundRobin,
            burst: 1,
            window: None,
        }
    }

    /// `n` identical weight-1 queues all replaying under `mode`, round-robin,
    /// no window. Adjust with the `with_*` builders.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: u32, mode: ReplayMode) -> Self {
        assert!(n >= 1, "at least one host queue is required");
        Self {
            queues: vec![QueueSpec::new(mode); n as usize],
            ..Self::single(mode)
        }
    }

    /// Sets the arbitration policy (builder-style).
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Sets the arbitration burst size (builder-style).
    pub fn with_burst(mut self, burst: u32) -> Self {
        self.burst = burst;
        self
    }

    /// Sets the device admission window (builder-style).
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets per-queue weights (builder-style; lengths must match).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the queue count.
    pub fn with_weights(mut self, weights: &[u32]) -> Self {
        assert_eq!(
            weights.len(),
            self.queues.len(),
            "one weight per host queue"
        );
        for (q, &w) in self.queues.iter_mut().zip(weights) {
            q.weight = w;
        }
        self
    }

    /// Number of submission queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Estimate of the steady-state outstanding-request depth this front
    /// end sustains: the sum of the closed-loop queues' depths (open-loop
    /// queues contribute nothing — their depth depends on the trace, not
    /// the front end). Feeds
    /// [`crate::config::HotpathConfig::wheel_for_depth`], the `auto`
    /// event-backend crossover.
    pub fn steady_depth_hint(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| match q.mode {
                ReplayMode::ClosedLoop { queue_depth } => queue_depth as u64,
                _ => 0,
            })
            .sum()
    }

    /// Validates the front-end configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency: no queues, an invalid per-queue
    /// replay mode, a zero burst/weight, or a zero window.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queues.is_empty() {
            return Err(ConfigError::new("at least one host queue is required"));
        }
        // Queue indices travel as u16 through requests and metrics.
        if self.queues.len() > u16::MAX as usize {
            return Err(ConfigError::new(format!(
                "at most {} host queues are supported, got {}",
                u16::MAX,
                self.queues.len()
            )));
        }
        for (i, q) in self.queues.iter().enumerate() {
            q.mode
                .validate()
                .map_err(|e| ConfigError::new(format!("host queue {i}: {e}")))?;
            if q.weight < 1 {
                return Err(ConfigError::new(format!(
                    "host queue {i}: weight must be at least 1"
                )));
            }
        }
        if self.burst < 1 {
            return Err(ConfigError::new("arbitration burst must be at least 1"));
        }
        if self.window == Some(0) {
            return Err(ConfigError::new(
                "device admission window must be at least 1 (or unbounded)",
            ));
        }
        Ok(())
    }
}

/// One host queue at run time: its load generator plus the submission queue
/// holding submitted-but-not-yet-admitted requests.
#[derive(Debug)]
struct SqState {
    generator: LoadGenerator,
    sq: VecDeque<ReqId>,
}

/// The multi-queue host front end driving one replay: per-queue generators
/// feeding per-queue submission queues, drained through the device-side
/// [`Arbiter`] under the admission window.
///
/// The front end shares the simulator's one event heap, transaction slab,
/// and arena — queues are striped views of the single trace, never clones of
/// the simulation state.
#[derive(Debug)]
pub(crate) struct FrontEnd {
    queues: Vec<SqState>,
    arb: Arbiter,
    window: Option<u32>,
    in_flight: u32,
}

impl FrontEnd {
    /// A front end with nothing to admit (the simulator's pre-run state).
    pub(crate) fn idle() -> Self {
        Self {
            queues: vec![SqState {
                generator: LoadGenerator::idle(),
                sq: VecDeque::new(),
            }],
            arb: Arbiter::new(ArbPolicy::RoundRobin, 1, vec![1]),
            window: None,
            in_flight: 0,
        }
    }

    /// Builds the front end for `cfg` over `trace` and returns the
    /// submissions to schedule immediately, each as
    /// `(queue, submission time, request)` — per-queue initial windows in
    /// queue order, exactly what each queue's [`LoadGenerator`] hands out.
    pub(crate) fn start(
        cfg: &HostQueueConfig,
        trace: &[HostRequest],
    ) -> (Self, Vec<(u16, SimTime, HostRequest)>) {
        let n = cfg.queues.len();
        let mut queues = Vec::with_capacity(n);
        let mut initial = Vec::new();
        let mut start_queue = |q: usize, stripe: &[HostRequest]| {
            let (generator, first) = LoadGenerator::start(cfg.queues[q].mode, stripe);
            initial.extend(first.into_iter().map(|(at, r)| (q as u16, at, r)));
            queues.push(SqState {
                generator,
                sq: VecDeque::new(),
            });
        };
        if n == 1 {
            // The default single-queue path feeds the generator straight
            // from the trace slice — no stripe copy on the hot path.
            start_queue(0, trace);
        } else {
            let mut stripes: Vec<Vec<HostRequest>> =
                vec![Vec::with_capacity(trace.len() / n + 1); n];
            for (i, &r) in trace.iter().enumerate() {
                stripes[i % n].push(r);
            }
            for (q, stripe) in stripes.iter().enumerate() {
                start_queue(q, stripe);
            }
        }
        let weights = cfg.queues.iter().map(|q| q.weight).collect();
        (
            Self {
                queues,
                arb: Arbiter::new(cfg.arb, cfg.burst, weights),
                window: cfg.window,
                in_flight: 0,
            },
            initial,
        )
    }

    /// A submission of `queue` was processed; returns the queue's next
    /// open-loop arrival to schedule (its timestamps are non-decreasing).
    pub(crate) fn next_arrival(&mut self, queue: u16) -> Option<(SimTime, HostRequest)> {
        self.queues[queue as usize].generator.next_arrival()
    }

    /// Parks a submitted request in its queue's submission queue until the
    /// arbiter admits it.
    pub(crate) fn enqueue(&mut self, queue: u16, req: ReqId) {
        self.queues[queue as usize].sq.push_back(req);
    }

    /// Admits the next request if the window has room and any submission
    /// queue has work, consulting the arbiter for the queue order.
    pub(crate) fn try_admit(&mut self) -> Option<ReqId> {
        if let Some(w) = self.window {
            if self.in_flight >= w {
                return None;
            }
        }
        let Self { queues, arb, .. } = self;
        let picked = arb.pick(|q| !queues[q].sq.is_empty())?;
        let req = queues[picked]
            .sq
            .pop_front()
            .expect("arbiter picked a backlogged queue");
        self.in_flight += 1;
        Some(req)
    }

    /// A request of `queue` completed: frees its window slot and returns the
    /// queue's next closed-loop submission, if any.
    pub(crate) fn complete(&mut self, queue: u16) -> Option<HostRequest> {
        debug_assert!(self.in_flight > 0, "completion without an admission");
        self.in_flight -= 1;
        self.queues[queue as usize].generator.on_completion()
    }

    /// Requests the generators have not yet handed out.
    pub(crate) fn pending_submissions(&self) -> usize {
        self.queues.iter().map(|q| q.generator.pending_len()).sum()
    }

    /// Requests parked in submission queues awaiting admission.
    pub(crate) fn parked(&self) -> usize {
        self.queues.iter().map(|q| q.sq.len()).sum()
    }

    /// Requests admitted to the device and not yet completed.
    pub(crate) fn in_flight(&self) -> u32 {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoOp;

    fn trace(n: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|i| HostRequest::new(SimTime::from_us(100 * i), IoOp::Read, i, 1))
            .collect()
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let ok = HostQueueConfig::uniform(2, ReplayMode::closed_loop(4));
        assert!(ok.validate().is_ok());
        let empty = HostQueueConfig {
            queues: vec![],
            ..HostQueueConfig::single(ReplayMode::OpenLoop)
        };
        assert!(empty.validate().is_err());
        let zero_burst = HostQueueConfig::single(ReplayMode::OpenLoop).with_burst(0);
        assert!(zero_burst.validate().is_err());
        let zero_window = HostQueueConfig::single(ReplayMode::OpenLoop).with_window(0);
        assert!(zero_window.validate().is_err());
        let mut zero_weight = HostQueueConfig::uniform(2, ReplayMode::OpenLoop);
        zero_weight.queues[1].weight = 0;
        assert!(zero_weight.validate().is_err());
        let bad_mode = HostQueueConfig::single(ReplayMode::ClosedLoop { queue_depth: 0 });
        assert!(bad_mode.validate().is_err());
        // Queue indices travel as u16: counts beyond u16::MAX are rejected.
        let too_many = HostQueueConfig {
            queues: vec![QueueSpec::new(ReplayMode::OpenLoop); u16::MAX as usize + 1],
            ..HostQueueConfig::single(ReplayMode::OpenLoop)
        };
        assert!(too_many.validate().is_err());
    }

    #[test]
    fn striping_preserves_per_queue_trace_order() {
        let t = trace(6);
        let cfg = HostQueueConfig::uniform(2, ReplayMode::closed_loop(8));
        let (front, initial) = FrontEnd::start(&cfg, &t);
        assert_eq!(front.queues.len(), 2);
        // Queue 0 gets requests 0, 2, 4; queue 1 gets 1, 3, 5 — submitted
        // per queue in trace order, all at t = 0 (closed loop).
        let q0: Vec<u64> = initial
            .iter()
            .filter(|&&(q, _, _)| q == 0)
            .map(|&(_, _, r)| r.lpn)
            .collect();
        let q1: Vec<u64> = initial
            .iter()
            .filter(|&&(q, _, _)| q == 1)
            .map(|&(_, _, r)| r.lpn)
            .collect();
        assert_eq!(q0, vec![0, 2, 4]);
        assert_eq!(q1, vec![1, 3, 5]);
        assert!(initial.iter().all(|&(_, at, _)| at == SimTime::ZERO));
    }

    #[test]
    fn window_caps_admissions_until_completions() {
        let t = trace(6);
        let cfg = HostQueueConfig::uniform(2, ReplayMode::closed_loop(8)).with_window(2);
        let (mut front, initial) = FrontEnd::start(&cfg, &t);
        for (i, &(q, _, _)) in initial.iter().enumerate() {
            front.enqueue(q, ReqId(i as u32));
        }
        assert_eq!(front.parked(), 6);
        // Only two admissions fit the window; RR alternates queues 0, 1.
        assert!(front.try_admit().is_some());
        assert!(front.try_admit().is_some());
        assert_eq!(front.try_admit(), None);
        assert_eq!(front.in_flight(), 2);
        assert_eq!(front.parked(), 4);
        // A completion frees one slot.
        assert_eq!(front.complete(0), None); // trace fits the per-queue QD
        assert!(front.try_admit().is_some());
        assert_eq!(front.try_admit(), None);
    }

    #[test]
    fn open_loop_queues_feed_arrivals_lazily_per_queue() {
        let t = trace(4);
        let cfg = HostQueueConfig::uniform(2, ReplayMode::OpenLoop);
        let (mut front, initial) = FrontEnd::start(&cfg, &t);
        // One eagerly scheduled arrival per queue.
        assert_eq!(initial.len(), 2);
        // Queue 0's next is request 2 (t = 200 µs); queue 1's is request 3.
        assert_eq!(front.next_arrival(0), Some((SimTime::from_us(200), t[2])));
        assert_eq!(front.next_arrival(1), Some((SimTime::from_us(300), t[3])));
        assert_eq!(front.next_arrival(0), None);
        assert_eq!(front.pending_submissions(), 0);
    }
}
