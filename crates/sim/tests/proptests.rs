//! Property-based tests for the simulator substrate: FTL mapping invariants
//! under arbitrary operation sequences, event-queue ordering, and the
//! redundancy layer's replica/stripe-set routing.

use proptest::prelude::*;
use rr_sim::array::{PlacementPolicy, Redundancy};
use rr_sim::config::SsdConfig;
use rr_sim::event::EventQueue;
use rr_sim::ftl::Ftl;
use rr_sim::request::{HostRequest, IoOp};
use rr_util::time::SimTime;

fn small_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After any sequence of overwrites and GC cycles, the LPN → PPN map
    /// stays a bijection onto valid pages and block valid-counts stay
    /// consistent.
    #[test]
    fn ftl_mapping_stays_bijective(ops in prop::collection::vec((0u64..400, any::<bool>()), 1..400)) {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 400).expect("footprint fits");
        ftl.precondition();
        for (lpn, run_gc) in ops {
            ftl.allocate_for_write(lpn).expect("space available");
            if run_gc {
                // Opportunistic full GC cycle on the page's plane.
                let plane = ftl.locate(ftl.translate(lpn).expect("mapped")).plane_global;
                if let Some(job) = ftl.start_gc(plane) {
                    for (mlpn, src) in job.moves {
                        if ftl.gc_move_still_needed(mlpn, src) {
                            ftl.allocate_for_gc(mlpn, job.plane).expect("reserve space");
                        }
                    }
                    ftl.finish_gc(job.victim_block);
                }
            }
        }
        // Bijectivity + reverse-map consistency.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..400u64 {
            let ppn = ftl.translate(lpn).expect("all LPNs stay mapped");
            prop_assert!(seen.insert(ppn), "two LPNs map to {ppn:?}");
            prop_assert_eq!(ftl.reverse(ppn), Some(lpn));
        }
        // Valid counts equal the number of mapped pages per block.
        let total_blocks = cfg.total_blocks() as u32;
        let mut per_block = vec![0u32; total_blocks as usize];
        for lpn in 0..400u64 {
            let loc = ftl.locate(ftl.translate(lpn).expect("mapped"));
            per_block[loc.block_global as usize] += 1;
        }
        for b in 0..total_blocks {
            prop_assert_eq!(
                ftl.block_valid_count(b),
                per_block[b as usize],
                "valid count mismatch in block {}", b
            );
        }
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any insertion pattern.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_us(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
    }

    /// The timing-wheel backend is observationally identical to the heap:
    /// any interleaving of `push`/`pop`/`peek_time`/`reset` — same-tick FIFO
    /// bursts, spans from single nanoseconds past the wheel's 2³² ns spill
    /// horizon, and post-`reset` reuse (the arena path) — yields the same
    /// `(time, payload)` sequence from both.
    #[test]
    fn timing_wheel_matches_heap_on_any_interleaving(
        ops in prop::collection::vec((0u8..10, 0u64..50, 0u32..4), 1..400)
    ) {
        let mut heap = EventQueue::new();
        let mut wheel = EventQueue::new_wheel();
        // Last popped time: pushes land at `clock + delta` so neither queue
        // ever schedules into the past.
        let mut clock = SimTime::ZERO;
        for (i, &(op, delta, magnitude)) in ops.iter().enumerate() {
            match op {
                // Push-heavy mix; `delta = 0` re-lands on the current tick
                // and the magnitude ladder reaches every wheel level plus
                // the spill list (49 × 10⁹ ns > the 2³² ns horizon).
                0..=5 => {
                    let t = clock + SimTime::from_ns(delta * 1_000u64.pow(magnitude));
                    heap.push(t, i);
                    wheel.push(t, i);
                }
                6 | 7 => {
                    let (a, b) = (heap.pop(), wheel.pop());
                    prop_assert_eq!(a, b, "pop diverged at op {}", i);
                    if let Some((t, _)) = a {
                        clock = t;
                    }
                }
                8 => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time(),
                        "peek diverged at op {}", i);
                }
                _ => {
                    heap.reset();
                    wheel.reset();
                    clock = SimTime::ZERO;
                }
            }
            prop_assert_eq!(heap.len(), wheel.len(), "len diverged at op {}", i);
        }
        // Drain whatever is left in lock-step.
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// `Redundancy::route_set` is a pure deterministic function with the
    /// documented shape for any (scheme, request, array, failure) input:
    /// stable across calls, never larger than the stripe span, never
    /// repeating a device, in-range, skipping the failed device — and its
    /// degraded set is the unfailed set's surviving prefix order with at
    /// most one fill-in successor appended.
    #[test]
    fn route_set_is_stable_bounded_and_degrades_deterministically(
        scheme_pick in 0u8..3,
        r in 2u32..6,
        k in 1u32..5,
        extra in 1u32..4,
        devices in 1u32..9,
        failed_raw in 0u32..10,
        index in 0usize..10_000,
        lpn in 0u64..100_000,
        is_read in any::<bool>(),
        policy_pick in 0u8..3,
    ) {
        let scheme = match scheme_pick {
            0 => Redundancy::None,
            1 => Redundancy::Replicate { r },
            _ => Redundancy::Ec { k, n: k + extra },
        };
        let policy = match policy_pick {
            0 => PlacementPolicy::RoundRobin,
            1 => PlacementPolicy::LpnHash,
            _ => PlacementPolicy::HotCold,
        };
        // 0 = no failure, 1..=9 = device 0..=8 failed (possibly out of range).
        let failed = failed_raw.checked_sub(1);
        let footprint = 100_000u64;
        let op = if is_read { IoOp::Read } else { IoOp::Write };
        let req = HostRequest::new(SimTime::from_us(index as u64), op, lpn, 1);
        let set = scheme.route_set(index, &req, devices, footprint, policy, failed);
        // Stable across calls.
        prop_assert_eq!(
            &set,
            &scheme.route_set(index, &req, devices, footprint, policy, failed),
            "route_set must be a pure function"
        );
        // Never empty, never over the stripe span, never out of range,
        // never repeating a device.
        let span = match scheme {
            Redundancy::None => 1,
            Redundancy::Replicate { r } => r.min(devices),
            Redundancy::Ec { k, n } => if is_read { k.min(n).min(devices) } else { n.min(devices) },
        };
        prop_assert!(!set.is_empty(), "a request must route somewhere");
        prop_assert!(set.len() <= span as usize, "set exceeds the stripe span");
        prop_assert!(set.iter().all(|&d| d < devices), "out-of-range device");
        let mut dedup = set.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), set.len(), "a device repeated in the set");
        // The failed device is never a member as long as the stripe span
        // holds an alternative; with nothing else in span (e.g. `none` with
        // its primary dead, or a one-device array) the set degenerates to
        // the placement primary rather than losing the request.
        if let Some(f) = failed {
            let primary = policy.route(index, &req, devices, footprint);
            let full_span = match scheme {
                Redundancy::None => 1,
                Redundancy::Replicate { .. } => devices,
                Redundancy::Ec { n, .. } => n.min(devices),
            };
            let has_alternative = (0..full_span).any(|j| (primary + j) % devices != f);
            if has_alternative {
                prop_assert!(
                    !set.contains(&f),
                    "the failed device must be routed around"
                );
            } else {
                prop_assert_eq!(
                    &set,
                    &vec![primary],
                    "with no in-span survivor the set degenerates to the primary"
                );
            }
        }
        // Deterministic degradation: the unfailed set minus the failed
        // device is a prefix of the degraded set (survivors keep their
        // order), and at most one fill-in successor is appended.
        if let Some(f) = failed {
            let unfailed = scheme.route_set(index, &req, devices, footprint, policy, None);
            if devices > 1 || f >= devices {
                let kept: Vec<u32> =
                    unfailed.iter().copied().filter(|&d| d != f).collect();
                prop_assert!(
                    set.len() >= kept.len() && set[..kept.len()] == kept[..],
                    "survivors must keep their unfailed order"
                );
                prop_assert!(
                    set.len() <= kept.len() + 1,
                    "at most one successor fills in for the failed member"
                );
            }
        }
    }

    /// Preconditioning then overwriting a subset leaves exactly that subset
    /// hot (the cold/retention bookkeeping behind Table 2).
    #[test]
    fn cold_tracking_matches_overwrites(hot in prop::collection::btree_set(0u64..300, 0..80)) {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 300).expect("footprint fits");
        ftl.precondition();
        for &lpn in &hot {
            ftl.allocate_for_write(lpn).expect("space available");
        }
        for lpn in 0..300u64 {
            prop_assert_eq!(ftl.is_cold(lpn), !hot.contains(&lpn));
        }
    }
}
