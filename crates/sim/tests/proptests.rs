//! Property-based tests for the simulator substrate: FTL mapping invariants
//! under arbitrary operation sequences, and event-queue ordering.

use proptest::prelude::*;
use rr_sim::config::SsdConfig;
use rr_sim::event::EventQueue;
use rr_sim::ftl::Ftl;
use rr_util::time::SimTime;

fn small_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After any sequence of overwrites and GC cycles, the LPN → PPN map
    /// stays a bijection onto valid pages and block valid-counts stay
    /// consistent.
    #[test]
    fn ftl_mapping_stays_bijective(ops in prop::collection::vec((0u64..400, any::<bool>()), 1..400)) {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 400).expect("footprint fits");
        ftl.precondition();
        for (lpn, run_gc) in ops {
            ftl.allocate_for_write(lpn).expect("space available");
            if run_gc {
                // Opportunistic full GC cycle on the page's plane.
                let plane = ftl.locate(ftl.translate(lpn).expect("mapped")).plane_global;
                if let Some(job) = ftl.start_gc(plane) {
                    for (mlpn, src) in job.moves {
                        if ftl.gc_move_still_needed(mlpn, src) {
                            ftl.allocate_for_gc(mlpn, job.plane).expect("reserve space");
                        }
                    }
                    ftl.finish_gc(job.victim_block);
                }
            }
        }
        // Bijectivity + reverse-map consistency.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..400u64 {
            let ppn = ftl.translate(lpn).expect("all LPNs stay mapped");
            prop_assert!(seen.insert(ppn), "two LPNs map to {ppn:?}");
            prop_assert_eq!(ftl.reverse(ppn), Some(lpn));
        }
        // Valid counts equal the number of mapped pages per block.
        let total_blocks = cfg.total_blocks() as u32;
        let mut per_block = vec![0u32; total_blocks as usize];
        for lpn in 0..400u64 {
            let loc = ftl.locate(ftl.translate(lpn).expect("mapped"));
            per_block[loc.block_global as usize] += 1;
        }
        for b in 0..total_blocks {
            prop_assert_eq!(
                ftl.block_valid_count(b),
                per_block[b as usize],
                "valid count mismatch in block {}", b
            );
        }
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any insertion pattern.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_us(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
    }

    /// The timing-wheel backend is observationally identical to the heap:
    /// any interleaving of `push`/`pop`/`peek_time`/`reset` — same-tick FIFO
    /// bursts, spans from single nanoseconds past the wheel's 2³² ns spill
    /// horizon, and post-`reset` reuse (the arena path) — yields the same
    /// `(time, payload)` sequence from both.
    #[test]
    fn timing_wheel_matches_heap_on_any_interleaving(
        ops in prop::collection::vec((0u8..10, 0u64..50, 0u32..4), 1..400)
    ) {
        let mut heap = EventQueue::new();
        let mut wheel = EventQueue::new_wheel();
        // Last popped time: pushes land at `clock + delta` so neither queue
        // ever schedules into the past.
        let mut clock = SimTime::ZERO;
        for (i, &(op, delta, magnitude)) in ops.iter().enumerate() {
            match op {
                // Push-heavy mix; `delta = 0` re-lands on the current tick
                // and the magnitude ladder reaches every wheel level plus
                // the spill list (49 × 10⁹ ns > the 2³² ns horizon).
                0..=5 => {
                    let t = clock + SimTime::from_ns(delta * 1_000u64.pow(magnitude));
                    heap.push(t, i);
                    wheel.push(t, i);
                }
                6 | 7 => {
                    let (a, b) = (heap.pop(), wheel.pop());
                    prop_assert_eq!(a, b, "pop diverged at op {}", i);
                    if let Some((t, _)) = a {
                        clock = t;
                    }
                }
                8 => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time(),
                        "peek diverged at op {}", i);
                }
                _ => {
                    heap.reset();
                    wheel.reset();
                    clock = SimTime::ZERO;
                }
            }
            prop_assert_eq!(heap.len(), wheel.len(), "len diverged at op {}", i);
        }
        // Drain whatever is left in lock-step.
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Preconditioning then overwriting a subset leaves exactly that subset
    /// hot (the cold/retention bookkeeping behind Table 2).
    #[test]
    fn cold_tracking_matches_overwrites(hot in prop::collection::btree_set(0u64..300, 0..80)) {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 300).expect("footprint fits");
        ftl.precondition();
        for &lpn in &hot {
            ftl.allocate_for_write(lpn).expect("space available");
        }
        for lpn in 0..300u64 {
            prop_assert_eq!(ftl.is_cold(lpn), !hot.contains(&lpn));
        }
    }
}
