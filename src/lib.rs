//! # ssd-readretry — a reproduction of "Reducing Solid-State Drive Read
//! # Latency by Optimizing Read-Retry" (ASPLOS 2021)
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`util`] | `rr-util` | deterministic RNG, distributions, statistics, simulated time |
//! | [`flash`] | `rr-flash` | 3D TLC NAND model: geometry, Table-1 timings, calibrated error model, chip state machine |
//! | [`ecc`] | `rr-ecc` | BCH codec (72 b / 1 KiB) and the ECC engine model |
//! | [`sim`] | `rr-sim` | event-driven multi-queue SSD simulator (MQSim-equivalent) |
//! | [`workloads`] | `rr-workloads` | MSRC + YCSB block workloads (Table 2) |
//! | [`charact`] | `rr-charact` | virtual chip-characterization platform (Figs. 4b, 5, 7–11) |
//! | [`core`] | `rr-core` | **the paper's contribution**: PR², AR², PnAR², PSO, RPT, experiments |
//!
//! # Quickstart
//!
//! ```
//! use ssd_readretry::prelude::*;
//!
//! // An end-of-life SSD (2K P/E cycles) holding year-old cold data.
//! let base = SsdConfig::scaled_for_tests();
//! let point = OperatingPoint::new(2000.0, 12.0);
//! let rpt = ReadTimingParamTable::default();
//! let trace = MsrcWorkload::Mds1.synthesize(500, 42);
//!
//! let baseline = run_one(&base, Mechanism::Baseline, point, &trace, &rpt);
//! let pnar2 = run_one(&base, Mechanism::PnAr2, point, &trace, &rpt);
//! assert!(pnar2.avg_response_us() < baseline.avg_response_us());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rr_charact as charact;
pub use rr_core as core;
pub use rr_ecc as ecc;
pub use rr_flash as flash;
pub use rr_sim as sim;
pub use rr_util as util;
pub use rr_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use rr_charact::platform::TestPlatform;
    pub use rr_core::experiment::{
        run_matrix, run_matrix_array, run_matrix_array_from, run_matrix_parallel,
        run_matrix_parallel_from, run_matrix_sharded, run_matrix_sharded_from, run_one,
        run_one_queued_array_from, run_one_queued_from, run_one_queued_redundant_from,
        run_one_queued_sharded_from, run_one_with_mode, run_qd_sweep, run_qd_sweep_array,
        run_qd_sweep_array_from, run_qd_sweep_queued, run_qd_sweep_queued_from,
        run_qd_sweep_sharded, run_qd_sweep_sharded_from, run_rate_sweep, run_rate_sweep_array,
        run_rate_sweep_array_from, run_rate_sweep_queued, run_rate_sweep_queued_from,
        run_rate_sweep_sharded, run_rate_sweep_sharded_from, ArrayCellStats, ArraySetup,
        DeviceTail, Mechanism, OperatingPoint, QdSweepCell, QueueSetup, RateSweepCell,
    };
    pub use rr_core::rpt::ReadTimingParamTable;
    pub use rr_core::{Ar2Controller, PnAr2Controller, Pr2Controller, PsoController};
    pub use rr_ecc::engine::{BchEccEngine, EccEngineModel, EccOutcome};
    pub use rr_flash::prelude::*;
    pub use rr_sim::array::{
        route_redundant, ArrayReport, DeviceSet, FailurePlan, Placement, PlacementPolicy,
        Redundancy, RedundancyStats, RedundantRouting,
    };
    pub use rr_sim::config::{ArbPolicy, ConfigError, EventBackend, SsdConfig};
    pub use rr_sim::gc::GcPolicy;
    pub use rr_sim::hostq::{HostQueueConfig, QueueSpec};
    pub use rr_sim::metrics::{GcStalls, LatencySummary, QueueLatency};
    pub use rr_sim::readflow::BaselineController;
    pub use rr_sim::replay::ReplayMode;
    pub use rr_sim::request::{HostRequest, IoOp};
    pub use rr_sim::scheduler::Arbiter;
    pub use rr_sim::shard::{run_sharded_queued_from, worker_budget, ShardArena, SHARD_WINDOW_US};
    pub use rr_sim::snapshot::{DeviceImage, ImageBank};
    pub use rr_sim::ssd::{SimArena, Ssd};
    pub use rr_util::rng::Rng;
    pub use rr_util::time::SimTime;
    pub use rr_workloads::msrc::MsrcWorkload;
    pub use rr_workloads::trace::Trace;
    pub use rr_workloads::ycsb::YcsbWorkload;
}
