//! Reproduce the paper's chip characterization on the virtual test platform:
//! how often does read-retry happen (Fig. 5), how much ECC margin is left in
//! the final retry step (Fig. 7), and how far can tPRE be cut (Fig. 11)?
//!
//! Run with: `cargo run --release --example characterize_chips`

use ssd_readretry::charact::figures;
use ssd_readretry::charact::platform::TestPlatform;
use ssd_readretry::core::rpt::ReadTimingParamTable;
use ssd_readretry::flash::calibration::ECC_CAPABILITY_PER_KIB;

fn main() {
    // A 32-chip population keeps the example fast; `repro` uses the paper's
    // 160 chips.
    let mut platform = TestPlatform::new(32, 2024);

    println!("== Fig. 5 — retry steps per read ==");
    println!(
        "{:>10} {:>8} {:>10} {:>5} {:>5} {:>10}",
        "P/E", "months", "mean", "min", "max", "P(>=7)"
    );
    for cell in figures::fig5(&platform, 128) {
        if [0.0, 3.0, 6.0, 12.0].contains(&cell.months) {
            println!(
                "{:>10} {:>8} {:>10.1} {:>5} {:>5} {:>9.1}%",
                cell.pec as u64,
                cell.months as u64,
                cell.mean,
                cell.min,
                cell.max,
                100.0 * cell.hist.fraction_at_least(7)
            );
        }
    }

    println!("\n== Fig. 7 — ECC-capability margin in the final retry step ==");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>8}",
        "temp", "P/E", "months", "M_ERR", "margin"
    );
    for cell in figures::fig7(&mut platform, 128) {
        if cell.months == 12.0 {
            println!(
                "{:>6}°C {:>10} {:>8} {:>8} {:>8}",
                cell.temp_c, cell.pec as u64, cell.months as u64, cell.m_err, cell.margin
            );
        }
    }
    println!("(ECC capability: {ECC_CAPABILITY_PER_KIB} bits per 1-KiB codeword)");

    println!("\n== Fig. 11 → RPT — how far AR2 may cut tPRE ==");
    let rpt = ReadTimingParamTable::default();
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "PEC bucket", "ret bucket", "ΔtPRE", "tR cut"
    );
    for row in rpt.rows().iter().take(12) {
        let rho = {
            use ssd_readretry::flash::timing::SensePhases;
            let d = SensePhases::table1();
            let r = d.with_reduction(row.pre_reduction, 0.0, 0.0);
            1.0 - d.rho_vs(&r)
        };
        println!(
            "{:>12} {:>12} {:>9.0}% {:>9.1}%",
            // `f64::MAX` is the table's open-ended bucket sentinel.
            if row.pec_max < f64::MAX {
                format!("<{}", row.pec_max as u64)
            } else {
                "max".into()
            },
            if row.retention_months_max < f64::MAX {
                format!("<{:.2}mo", row.retention_months_max)
            } else {
                "max".into()
            },
            row.pre_reduction * 100.0,
            rho * 100.0,
        );
    }
    println!(
        "... ({} rows total, {} bytes on-device)",
        rpt.rows().len(),
        rpt.storage_bytes()
    );
}
