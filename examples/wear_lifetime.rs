//! Lifetime sweep: how SSD read response degrades as the drive wears and its
//! data ages — and how much of that degradation PnAR² recovers.
//!
//! The paper's Fig. 5/14 tell this story at a few operating points; this
//! example draws the whole curve, which is what an SSD vendor would look at
//! when deciding whether the two firmware changes are worth shipping.
//!
//! Run with: `cargo run --release --example wear_lifetime`

use ssd_readretry::prelude::*;

fn main() {
    let base = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    let trace = YcsbWorkload::B.synthesize(2_000, 21);
    println!(
        "workload {} over the SSD lifetime (retention fixed at 6 months):\n",
        trace.name
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "P/E cycles", "Base (µs)", "PnAR2 (µs)", "normalized", "avg steps", "recovered"
    );
    for pec in [0.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0] {
        let point = OperatingPoint::new(pec, 6.0);
        let baseline = run_one(&base, Mechanism::Baseline, point, &trace, &rpt);
        let pnar2 = run_one(&base, Mechanism::PnAr2, point, &trace, &rpt);
        let norr = run_one(&base, Mechanism::NoRR, point, &trace, &rpt);
        let gap = baseline.avg_response_us() - norr.avg_response_us();
        let recovered = if gap > 1.0 {
            (baseline.avg_response_us() - pnar2.avg_response_us()) / gap
        } else {
            0.0
        };
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.3} {:>12.2} {:>9.0}%",
            pec as u64,
            baseline.avg_response_us(),
            pnar2.avg_response_us(),
            pnar2.avg_response_us() / baseline.avg_response_us(),
            baseline.avg_retry_steps(),
            recovered * 100.0,
        );
    }
    println!(
        "\n'recovered' = the fraction of the Baseline→ideal-NoRR gap that PnAR2\n\
         closes (the paper reports 41 % on average across its Fig. 14 grid)."
    );
}
