//! Quickstart: how much does read-retry cost, and how much do PR²/AR² save?
//!
//! Builds an aged SSD, replays a read-dominant workload under each mechanism,
//! and prints the normalized response times — a one-workload slice of the
//! paper's Fig. 14.
//!
//! Run with: `cargo run --release --example quickstart`

use ssd_readretry::prelude::*;

fn main() {
    // The paper's worst prescribed operating point: 1-year-old cold data on
    // blocks with 2K program/erase cycles.
    let point = OperatingPoint::new(2000.0, 12.0);
    let base = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();

    // mds_1: the paper's most read-dominant, coldest MSRC workload.
    let trace = MsrcWorkload::Mds1.synthesize(4_000, 7);
    let stats = trace.stats();
    println!(
        "workload {} — {} requests, read ratio {:.2}, cold ratio {:.2}",
        trace.name, stats.requests, stats.read_ratio, stats.cold_ratio
    );
    println!(
        "operating point: {} P/E cycles, {} months retention\n",
        point.pec, point.retention_months
    );

    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::Pr2,
        Mechanism::Ar2,
        Mechanism::PnAr2,
        Mechanism::NoRR,
    ];
    let mut baseline_rt = None;
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>10}",
        "mechanism", "avg resp (µs)", "normalized", "avg retries", "resets"
    );
    for m in mechanisms {
        let report = run_one(&base, m, point, &trace, &rpt);
        let rt = report.avg_response_us();
        let base_rt = *baseline_rt.get_or_insert(rt);
        println!(
            "{:<10} {:>14.1} {:>12.3} {:>14.2} {:>10}",
            m.name(),
            rt,
            rt / base_rt,
            report.avg_retry_steps(),
            report.resets,
        );
    }
    println!(
        "\nPR2 pipelines retry steps (Eq. 4); AR2 shortens each step's sensing\n\
         via the RPT's 40–54 % tPRE reduction (Eq. 5); PnAR2 does both."
    );
}
