//! The ECC-capability margin is real: encode a 1-KiB codeword with the actual
//! BCH codec (t = 72 over GF(2^14)), inject exactly the error counts the
//! paper measures in the final retry step (Fig. 7), and watch the decoder
//! absorb them with room to spare — the headroom AR² spends on faster
//! sensing.
//!
//! Run with: `cargo run --release --example ecc_margin`

use ssd_readretry::ecc::bch::BchCode;
use ssd_readretry::flash::calibration::{Calibration, OperatingCondition};
use ssd_readretry::util::rng::Rng;

fn main() {
    println!("constructing the paper's ECC: BCH, t = 72 per 1-KiB codeword, GF(2^14)...");
    let code = BchCode::nand_72_per_kib().expect("parameters are valid");
    println!(
        "  {} data bits + {} parity bits ({:.1} % overhead)\n",
        code.data_bits(),
        code.parity_bits(),
        100.0 * code.parity_bits() as f64 / code.data_bits() as f64
    );

    let mut rng = Rng::seed_from_u64(99);
    let payload: Vec<u8> = (0..1024).map(|_| rng.next_u64() as u8).collect();
    let clean = code.encode_bytes(&payload).expect("1-KiB payload");

    let cal = Calibration::asplos21();
    let scenarios = [
        (
            "fresh page, final step",
            OperatingCondition::new(0.0, 0.0, 30.0),
        ),
        (
            "(1K P/E, 12 mo) @ 30 °C",
            OperatingCondition::new(1000.0, 12.0, 30.0),
        ),
        (
            "(2K P/E, 12 mo) @ 30 °C — worst case",
            OperatingCondition::new(2000.0, 12.0, 30.0),
        ),
    ];
    println!(
        "{:<40} {:>8} {:>10} {:>10}",
        "scenario", "errors", "corrected", "margin"
    );
    for (name, cond) in scenarios {
        let m_err = cal.m_err(cond).round() as usize;
        let mut corrupted = clean.clone();
        // Flip M_ERR distinct random bits.
        let mut flipped = std::collections::BTreeSet::new();
        while flipped.len() < m_err {
            let pos = rng.below_usize(corrupted.len());
            if flipped.insert(pos) {
                corrupted.flip(pos);
            }
        }
        let report = code.decode(&mut corrupted).expect("within capability");
        assert_eq!(
            code.extract_data_bytes(&corrupted),
            payload,
            "payload intact"
        );
        println!(
            "{:<40} {:>8} {:>10} {:>10}",
            name,
            m_err,
            report.corrected,
            72 - report.corrected
        );
    }

    // And the failure edge: one error beyond the capability.
    let mut corrupted = clean.clone();
    for i in 0..73 {
        corrupted.flip(i * 101 + 7);
    }
    match code.decode(&mut corrupted) {
        Err(e) => println!("\n73 errors: decode fails ({e}) → the SSD starts a read-retry."),
        Ok(r) => println!(
            "\n73 errors: bounded-distance decode mis-corrected ({} flips)",
            r.corrected
        ),
    }
    println!(
        "\nEven at the worst prescribed operating point the final retry step\n\
         leaves a 44 % margin (32 of 72 bits) — AR2 converts it into a 40 %\n\
         shorter bit-line precharge, cutting tR by ~25 % (paper §5.1, §6.2)."
    );
}
