//! Replay a real MSRC-format block trace (or the built-in sample) under every
//! read-retry mechanism.
//!
//! Run with:
//! `cargo run --release --example trace_replay [-- /path/to/msrc.csv]`
//!
//! The MSRC CSV format is
//! `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` with
//! Windows-filetime timestamps (100 ns ticks) and byte offsets/sizes, as
//! published with Narayanan et al., "Write Off-loading" (FAST'08) — the trace
//! suite the paper evaluates (§7.1).

use ssd_readretry::prelude::*;
use ssd_readretry::workloads::msrc::parse_msrc_csv;

/// A small embedded sample in the MSRC format (used when no file is given):
/// a burst of reads over a few hundred pages with sporadic writes.
fn sample_csv() -> String {
    let mut out = String::new();
    let t0: u64 = 128_166_372_003_061_629;
    for i in 0..600u64 {
        let ts = t0 + i * 3_000; // 300 µs apart
        let (ty, offset) = if i % 10 == 3 {
            ("Write", (i % 37) * 16384)
        } else {
            ("Read", ((i * 7919) % 500) * 16384)
        };
        out.push_str(&format!("{ts},srv,0,{ty},{offset},16384,0\n"));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, content) = match args.first() {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).expect("trace file must be readable"),
        ),
        None => ("built-in sample".to_string(), sample_csv()),
    };
    let trace = parse_msrc_csv(&content, &name, 16 * 1024).expect("valid MSRC CSV");
    let stats = trace.stats();
    println!(
        "{}: {} requests over {} pages (read ratio {:.2}, cold ratio {:.2})\n",
        trace.name, stats.requests, trace.footprint_pages, stats.read_ratio, stats.cold_ratio
    );

    let base = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(1000.0, 6.0);
    println!(
        "replaying at ({} P/E cycles, {} months cold-data retention):\n",
        point.pec, point.retention_months
    );
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>12}",
        "mechanism", "avg resp (µs)", "p99 (µs)", "avg steps", "senses"
    );
    for m in [
        Mechanism::Baseline,
        Mechanism::Pr2,
        Mechanism::Ar2,
        Mechanism::PnAr2,
        Mechanism::Pso,
        Mechanism::PsoPnAr2,
    ] {
        let report = run_one(&base, m, point, &trace, &rpt);
        // A trace with no reads has no read tail: render `—`, not 0.
        let p99 = report
            .read_p99_us()
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "—".into());
        println!(
            "{:<10} {:>14.1} {:>12} {:>12.2} {:>12}",
            m.name(),
            report.avg_response_us(),
            p99,
            report.avg_retry_steps(),
            report.senses,
        );
    }
}
