//! Replay all six YCSB workloads under Baseline, PSO, and PSO+PnAR² — the
//! paper's Fig. 15 story: PR²/AR² stack on top of the state-of-the-art
//! retry-count reducer, because they shorten the steps PSO cannot remove.
//!
//! Run with: `cargo run --release --example ycsb_comparison`

use ssd_readretry::prelude::*;

fn main() {
    let base = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    // A mid-life SSD with 6-month-old cold data (the condition §7.2
    // highlights).
    let point = OperatingPoint::new(2000.0, 6.0);

    println!(
        "YCSB A–F @ ({} P/E cycles, {} months), normalized avg response time:\n",
        point.pec, point.retention_months
    );
    println!(
        "{:<8} {:>10} {:>8} {:>12} {:>8} {:>22}",
        "workload", "Baseline", "PSO", "PSO+PnAR2", "NoRR", "avg steps Base→PSO"
    );
    for w in YcsbWorkload::ALL {
        let trace = w.synthesize(2_500, 11);
        let baseline = run_one(&base, Mechanism::Baseline, point, &trace, &rpt);
        let pso = run_one(&base, Mechanism::Pso, point, &trace, &rpt);
        let combo = run_one(&base, Mechanism::PsoPnAr2, point, &trace, &rpt);
        let norr = run_one(&base, Mechanism::NoRR, point, &trace, &rpt);
        let b = baseline.avg_response_us();
        println!(
            "{:<8} {:>10.3} {:>8.3} {:>12.3} {:>8.3} {:>12.1} → {:>6.1}",
            w.name(),
            1.0,
            pso.avg_response_us() / b,
            combo.avg_response_us() / b,
            norr.avg_response_us() / b,
            baseline.avg_retry_steps(),
            pso.avg_retry_steps(),
        );
    }
    println!(
        "\nPSO cuts the *number* of retry steps (never below its ~3-step guard);\n\
         PnAR2 cuts the *latency of each remaining step* — which is why the\n\
         combination beats either alone (paper §7.3)."
    );
}
