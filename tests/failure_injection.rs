//! Failure injection: outlier pages whose final-step RBER exceeds the
//! reduced-tPRE budget must trigger AR²'s documented fallback (§6.2 — restore
//! default timing and repeat the read-retry) without losing any read.

use ssd_readretry::prelude::*;

fn outlier_cfg(rate: f64) -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.outlier_rate = rate;
    cfg
}

fn cold_read_trace(n: u64) -> Trace {
    let requests = (0..n)
        .map(|i| HostRequest::new(SimTime::from_us(i * 2_000), IoOp::Read, i * 13, 1))
        .collect();
    Trace::new("outliers", requests, 20_000)
}

#[test]
fn outliers_still_complete_under_ar2_fallback() {
    let cfg = outlier_cfg(0.25);
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(120);
    for m in [Mechanism::Ar2, Mechanism::PnAr2] {
        let report = run_one(&cfg, m, point, &trace, &rpt);
        assert_eq!(
            report.read_failures,
            0,
            "{}: outliers must fall back to default timing, not fail",
            m.name()
        );
        assert_eq!(report.requests_completed, 120);
    }
}

#[test]
fn outlier_fallback_costs_latency_but_baseline_unaffected() {
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(120);

    // Baseline uses default timing throughout: outliers are invisible
    // (their final-step errors still fit the 72-bit capability).
    let clean = run_one(&outlier_cfg(0.0), Mechanism::Baseline, point, &trace, &rpt);
    let dirty = run_one(&outlier_cfg(0.25), Mechanism::Baseline, point, &trace, &rpt);
    assert_eq!(clean.avg_response_us(), dirty.avg_response_us());

    // AR2 pays for outliers (a full reduced walk + restore + default walk),
    // so its advantage shrinks as the outlier rate grows.
    let ar2_clean = run_one(&outlier_cfg(0.0), Mechanism::Ar2, point, &trace, &rpt);
    let ar2_dirty = run_one(&outlier_cfg(0.25), Mechanism::Ar2, point, &trace, &rpt);
    assert!(
        ar2_dirty.avg_response_us() > ar2_clean.avg_response_us(),
        "outliers must cost AR2 latency: {} vs {}",
        ar2_dirty.avg_response_us(),
        ar2_clean.avg_response_us()
    );
    // ...but fallback reads remain bounded: even with 25 % outliers AR2 must
    // not collapse to worse than Baseline by more than the documented
    // worst-case (double walk).
    assert!(ar2_dirty.avg_response_us() < 2.5 * dirty.avg_response_us());
}

#[test]
fn zero_outlier_rate_matches_paper_observation() {
    // The paper never observed an outlier in 10⁷ pages; at rate 0 the AR2
    // fallback path must never run: exactly 2 SET FEATUREs per retried read
    // (install + rollback).
    let cfg = outlier_cfg(0.0);
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(50);
    let report = run_one(&cfg, Mechanism::Ar2, point, &trace, &rpt);
    assert_eq!(report.set_features, 2 * 50);
}
