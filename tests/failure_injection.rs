//! Failure injection — two layers of it:
//!
//! * page-level: outlier pages whose final-step RBER exceeds the reduced-tPRE
//!   budget must trigger AR²'s documented fallback (§6.2 — restore default
//!   timing and repeat the read-retry) without losing any read;
//! * device-level: a `--fail-device` loss mid-run must reroute new requests
//!   to the survivors, inject deterministic rebuild reads across them, and
//!   conserve every logical completion — while a failure beyond the trace
//!   horizon must be structurally invisible.

use ssd_readretry::prelude::*;

fn outlier_cfg(rate: f64) -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.outlier_rate = rate;
    cfg
}

fn cold_read_trace(n: u64) -> Trace {
    let requests = (0..n)
        .map(|i| HostRequest::new(SimTime::from_us(i * 2_000), IoOp::Read, i * 13, 1))
        .collect();
    Trace::new("outliers", requests, 20_000)
}

#[test]
fn outliers_still_complete_under_ar2_fallback() {
    let cfg = outlier_cfg(0.25);
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(120);
    for m in [Mechanism::Ar2, Mechanism::PnAr2] {
        let report = run_one(&cfg, m, point, &trace, &rpt);
        assert_eq!(
            report.read_failures,
            0,
            "{}: outliers must fall back to default timing, not fail",
            m.name()
        );
        assert_eq!(report.requests_completed, 120);
    }
}

#[test]
fn outlier_fallback_costs_latency_but_baseline_unaffected() {
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(120);

    // Baseline uses default timing throughout: outliers are invisible
    // (their final-step errors still fit the 72-bit capability).
    let clean = run_one(&outlier_cfg(0.0), Mechanism::Baseline, point, &trace, &rpt);
    let dirty = run_one(&outlier_cfg(0.25), Mechanism::Baseline, point, &trace, &rpt);
    assert_eq!(clean.avg_response_us(), dirty.avg_response_us());

    // AR2 pays for outliers (a full reduced walk + restore + default walk),
    // so its advantage shrinks as the outlier rate grows.
    let ar2_clean = run_one(&outlier_cfg(0.0), Mechanism::Ar2, point, &trace, &rpt);
    let ar2_dirty = run_one(&outlier_cfg(0.25), Mechanism::Ar2, point, &trace, &rpt);
    assert!(
        ar2_dirty.avg_response_us() > ar2_clean.avg_response_us(),
        "outliers must cost AR2 latency: {} vs {}",
        ar2_dirty.avg_response_us(),
        ar2_clean.avg_response_us()
    );
    // ...but fallback reads remain bounded: even with 25 % outliers AR2 must
    // not collapse to worse than Baseline by more than the documented
    // worst-case (double walk).
    assert!(ar2_dirty.avg_response_us() < 2.5 * dirty.avg_response_us());
}

#[test]
fn zero_outlier_rate_matches_paper_observation() {
    // The paper never observed an outlier in 10⁷ pages; at rate 0 the AR2
    // fallback path must never run: exactly 2 SET FEATUREs per retried read
    // (install + rollback).
    let cfg = outlier_cfg(0.0);
    let point = OperatingPoint::new(2000.0, 12.0);
    let rpt = ReadTimingParamTable::default();
    let trace = cold_read_trace(50);
    let report = run_one(&cfg, Mechanism::Ar2, point, &trace, &rpt);
    assert_eq!(report.set_features, 2 * 50);
}

/// Runs one closed-loop replicated array replay with an optional device
/// loss through the per-query redundant runner.
fn replicated_run(t: &Trace, failure: Option<FailurePlan>) -> ArrayReport {
    let base = SsdConfig::scaled_for_tests().with_seed(0xA88A_71E5);
    let array = ArraySetup::new(4, PlacementPolicy::LpnHash)
        .with_redundancy(Redundancy::Replicate { r: 2 })
        .with_failure(failure);
    let mut set = DeviceSet::new(4).expect("devices >= 1");
    run_one_queued_redundant_from(
        &mut set,
        &base,
        Mechanism::PnAr2,
        OperatingPoint::new(2000.0, 6.0),
        t,
        &array,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        8,
        None,
        0,
    )
    .expect("valid redundant configuration")
}

#[test]
fn device_loss_reroutes_to_survivors_and_conserves_completions() {
    let t = MsrcWorkload::Mds1.synthesize(400, 17);
    let failed = 1u32;
    let fail_at = t.requests[t.requests.len() / 2].arrival;
    let report = replicated_run(
        &t,
        Some(FailurePlan {
            device: failed,
            at: fail_at,
        }),
    );
    let stats = report.redundancy.as_ref().expect("redundant run has stats");
    assert_eq!(stats.failed_device, Some(failed));
    // Every logical request still completes exactly once: the loss moves
    // copies, it does not lose requests.
    assert_eq!(report.requests_completed, t.requests.len() as u64);
    assert_eq!(
        stats.wait_for_k.count,
        t.requests.iter().filter(|r| r.op == IoOp::Read).count() as u64
    );
    // The dead device absorbs no rebuild traffic; the survivors absorb all
    // of it, and each device's completion count decomposes exactly into its
    // copy fan-out plus its rebuild share.
    assert_eq!(stats.rebuild_reads[failed as usize], 0);
    let rebuild_total: u64 = stats.rebuild_reads.iter().sum();
    assert!(
        rebuild_total > 0,
        "a mid-run loss must inject rebuild reads"
    );
    for d in 0..4usize {
        assert_eq!(
            report.devices[d].requests_completed,
            stats.fanout_reads[d] + stats.fanout_writes[d] + stats.rebuild_reads[d],
            "device {d} completions must be copies + rebuild reads"
        );
    }
    // The mid-trace loss is visible in the fan-out: the failed device served
    // copies before `fail_at` but fewer than any survivor.
    let failed_copies = stats.fanout_reads[failed as usize] + stats.fanout_writes[failed as usize];
    assert!(failed_copies > 0, "pre-failure copies complete normally");
    for d in (0..4usize).filter(|&d| d != failed as usize) {
        assert!(
            stats.fanout_reads[d] + stats.fanout_writes[d] > failed_copies,
            "survivor {d} must serve more copies than the failed device"
        );
    }
}

#[test]
fn failure_beyond_the_trace_horizon_is_structurally_invisible() {
    // A `--fail-at-us` after the last arrival never reroutes anything and
    // never injects rebuild reads: the run must be bit-identical to the
    // same replicated run with no failure at all.
    let t = MsrcWorkload::Mds1.synthesize(400, 17);
    let horizon = t.requests.last().expect("non-empty trace").arrival;
    let beyond = replicated_run(
        &t,
        Some(FailurePlan {
            device: 1,
            at: horizon + SimTime::from_us(1),
        }),
    );
    let unfailed = replicated_run(&t, None);
    assert_eq!(
        beyond, unfailed,
        "a failure beyond the horizon must be byte-identical to no failure"
    );
    assert_eq!(
        beyond
            .redundancy
            .as_ref()
            .expect("redundant run has stats")
            .failed_device,
        None
    );
}
