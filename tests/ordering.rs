//! Fig. 14 sanity: at an aged operating point the mechanism ordering
//! `NoRR ≤ PnAR2 ≤ min(AR2, PR2) ≤ Baseline` must hold for every workload —
//! pipelining alone helps, adaptation alone helps, their combination beats
//! either, and the ideal no-retry SSD bounds everything from below.

use ssd_readretry::prelude::*;

/// Average response time of `mechanism` on `trace` at the aged (2K P/E,
/// 12-month) point the paper highlights.
fn avg_rt(trace: &Trace, mechanism: Mechanism) -> f64 {
    let cfg = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(2000.0, 12.0);
    run_one(&cfg, mechanism, point, trace, &rpt).avg_response_us()
}

#[test]
fn fig14_ordering_holds_across_workloads_at_aged_point() {
    // Two read-dominant MSRC traces, one write-dominant MSRC trace, and one
    // YCSB trace: ≥ 3 distinct workloads as the Fig. 14 sanity check asks.
    let traces = vec![
        MsrcWorkload::Mds1.synthesize(1_200, 42),
        MsrcWorkload::Usr1.synthesize(1_200, 42),
        MsrcWorkload::Stg0.synthesize(1_200, 42),
        YcsbWorkload::C.synthesize(1_200, 42),
    ];
    for trace in &traces {
        let baseline = avg_rt(trace, Mechanism::Baseline);
        let pr2 = avg_rt(trace, Mechanism::Pr2);
        let ar2 = avg_rt(trace, Mechanism::Ar2);
        let pnar2 = avg_rt(trace, Mechanism::PnAr2);
        let norr = avg_rt(trace, Mechanism::NoRR);
        let name = &trace.name;
        assert!(
            norr <= pnar2,
            "{name}: ideal NoRR ({norr:.1} µs) must lower-bound PnAR2 ({pnar2:.1} µs)"
        );
        assert!(
            pnar2 <= pr2.min(ar2),
            "{name}: PnAR2 ({pnar2:.1} µs) must beat min(AR2, PR2) ({:.1} µs)",
            pr2.min(ar2)
        );
        assert!(
            pr2.min(ar2) <= baseline,
            "{name}: min(AR2, PR2) ({:.1} µs) must beat Baseline ({baseline:.1} µs)",
            pr2.min(ar2)
        );
        // The inequalities must be strict in aggregate: deep-retry pages
        // exist at (2K, 12 mo), so each mechanism buys real latency.
        assert!(
            pnar2 < baseline,
            "{name}: PnAR2 must strictly beat Baseline"
        );
    }
}
