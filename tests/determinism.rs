//! Determinism regression tests: identical inputs must produce *identical*
//! outputs — field-for-field equal [`SimReport`]s from `run_one`, and
//! bit-identical matrices from the parallel runner regardless of thread
//! count. Any hidden nondeterminism (hash-map iteration order, shared RNG
//! state, scheduling-dependent seeding) fails these tests.

use ssd_readretry::core::experiment::{run_matrix, run_matrix_parallel};
use ssd_readretry::prelude::*;

#[test]
fn run_one_is_byte_identical_for_identical_inputs() {
    let cfg = SsdConfig::scaled_for_tests().with_seed(0xD5EED);
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(2000.0, 12.0);
    for mechanism in [
        Mechanism::Baseline,
        Mechanism::Pr2,
        Mechanism::Ar2,
        Mechanism::PnAr2,
        Mechanism::NoRR,
        Mechanism::Pso,
        Mechanism::PsoPnAr2,
    ] {
        let trace = MsrcWorkload::Mds1.synthesize(600, 21);
        let a = run_one(&cfg, mechanism, point, &trace, &rpt);
        let b = run_one(&cfg, mechanism, point, &trace, &rpt);
        // Full structural equality: every statistic, histogram bin, and
        // counter — not just the headline average.
        assert_eq!(a, b, "{} diverged across identical runs", mechanism.name());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn trace_synthesis_is_deterministic_per_seed() {
    let a = YcsbWorkload::A.synthesize(800, 7);
    let b = YcsbWorkload::A.synthesize(800, 7);
    assert_eq!(a, b);
    let other_seed = YcsbWorkload::A.synthesize(800, 8);
    assert_ne!(a, other_seed, "different seeds must give different traces");
}

#[test]
fn parallel_matrix_equals_serial_matrix() {
    let cfg = SsdConfig::scaled_for_tests().with_seed(77);
    let traces = vec![
        (MsrcWorkload::Mds1.synthesize(250, 3), true),
        (MsrcWorkload::Stg0.synthesize(250, 3), false),
        (YcsbWorkload::C.synthesize(250, 3), true),
    ];
    let points = [
        OperatingPoint::new(1000.0, 6.0),
        OperatingPoint::new(2000.0, 12.0),
    ];
    let serial = run_matrix(&cfg, &traces, &points, &Mechanism::FIG14);
    for jobs in [2, 3, 8] {
        let parallel = run_matrix_parallel(&cfg, &traces, &points, &Mechanism::FIG14, jobs);
        assert_eq!(
            serial, parallel,
            "--jobs {jobs} diverged from the serial matrix"
        );
    }
}

#[test]
fn parallel_matrix_is_itself_deterministic() {
    // Two parallel runs (same thread count) must agree with each other, not
    // just with the serial path.
    let cfg = SsdConfig::scaled_for_tests();
    let traces = vec![
        (YcsbWorkload::A.synthesize(200, 5), false),
        (YcsbWorkload::C.synthesize(200, 5), true),
    ];
    let points = [OperatingPoint::new(2000.0, 6.0)];
    let a = run_matrix_parallel(&cfg, &traces, &points, &Mechanism::FIG15, 4);
    let b = run_matrix_parallel(&cfg, &traces, &points, &Mechanism::FIG15, 4);
    assert_eq!(a, b);
}
