//! The RPT built analytically from the calibration must agree with the RPT
//! built the paper's way — by profiling a (virtual) chip population on the
//! characterization platform (Fig. 11 → §6.2's offline profiling).

use ssd_readretry::charact::figures::max_safe_reduction;
use ssd_readretry::charact::platform::TestPlatform;
use ssd_readretry::core::rpt::ReadTimingParamTable;
use ssd_readretry::flash::calibration::Calibration;
use ssd_readretry::flash::calibration::{ECC_CAPABILITY_PER_KIB, RPT_SAFETY_MARGIN_BITS};
use ssd_readretry::flash::timing::SensePhases;

#[test]
fn measured_profile_matches_analytic_rpt() {
    let analytic = ReadTimingParamTable::from_calibration(&Calibration::asplos21());

    let mut platform = TestPlatform::new(24, 31);
    platform.set_temperature(85.0);
    let pages = platform.sample_pages(256);
    let measured = ReadTimingParamTable::build(|pec, months, reduction| {
        let phases = SensePhases::table1().with_reduction(reduction, 0.0, 0.0);
        let m = platform.measure_m_err_with_phases(&pages, pec, months, &phases);
        m + RPT_SAFETY_MARGIN_BITS <= ECC_CAPABILITY_PER_KIB
    });

    for (a, m) in analytic.rows().iter().zip(measured.rows()) {
        assert_eq!(a.pec_max, m.pec_max);
        assert_eq!(a.retention_months_max, m.retention_months_max);
        // The measured profile may differ by a search step or two because the
        // finite page sample does not always contain the population max.
        assert!(
            (a.pre_reduction - m.pre_reduction).abs() <= 0.04 + 1e-9,
            "bucket ({}, {}): analytic {:.2} vs measured {:.2}",
            a.pec_max,
            a.retention_months_max,
            a.pre_reduction,
            m.pre_reduction
        );
    }

    // Both tables must land in Fig. 11's 40–54 % band.
    for row in measured.rows() {
        assert!((0.38..=0.55).contains(&row.pre_reduction));
    }

    // And the measured profile tightens monotonically with wear.
    let first_ret_bucket = measured.rows()[0].retention_months_max;
    let col: Vec<f64> = measured
        .rows()
        .iter()
        .filter(|r| r.retention_months_max == first_ret_bucket)
        .map(|r| r.pre_reduction)
        .collect();
    for w in col.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "reduction must not grow with PEC");
    }

    let reduction_profiled = max_safe_reduction(&platform, &pages, 2000.0, 12.0).0;
    assert!(
        (0.38..=0.44).contains(&reduction_profiled),
        "worst bucket ≈ 40 %"
    );
}
