//! Scaling checks, in two senses. Geometry scaling: the evaluation uses a
//! capacity-scaled SSD (64 blocks/plane instead of the paper's 1,888) for
//! test-budget reasons; the response-time *ratios* between mechanisms must
//! be insensitive to that scaling (DESIGN.md §7). Shard scaling: the
//! channel-sharded engine behind `--shards` must produce bit-identical
//! results at every shard count, across reruns and `--jobs` values, and its
//! worker budget must grow monotonically with the shard request without
//! ever exceeding it.

use ssd_readretry::prelude::*;
use ssd_readretry::sim::replay::ReplayMode as Mode;
use std::time::Instant;

fn ratio_at(blocks_per_plane: u32) -> (f64, f64) {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.chip.blocks_per_plane = blocks_per_plane;
    let point = OperatingPoint::new(2000.0, 6.0);
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Usr1.synthesize(1_500, 17);
    let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt);
    let pr2 = run_one(&cfg, Mechanism::Pr2, point, &trace, &rpt);
    let pnar2 = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    (
        pr2.avg_response_us() / baseline.avg_response_us(),
        pnar2.avg_response_us() / baseline.avg_response_us(),
    )
}

#[test]
fn normalized_response_times_are_geometry_insensitive() {
    let (pr2_small, pnar2_small) = ratio_at(32);
    let (pr2_large, pnar2_large) = ratio_at(128);
    assert!(
        (pr2_small - pr2_large).abs() < 0.05,
        "PR2 ratio drifts with geometry: {pr2_small} vs {pr2_large}"
    );
    assert!(
        (pnar2_small - pnar2_large).abs() < 0.05,
        "PnAR2 ratio drifts with geometry: {pnar2_small} vs {pnar2_large}"
    );
}

/// The GC-stress geometry every shard-determinism run below replays: small
/// blocks so garbage collection and read-over-program suspension stay hot.
fn gc_stress_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests().with_seed(0x5AA5_0123);
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

#[test]
fn sharded_replay_is_deterministic_across_shard_counts_reruns_and_jobs() {
    // The acceptance matrix of the sharding work, at the library layer:
    // every (shards, jobs) combination and every rerun of the same
    // combination must report bit-identical cells on a workload that keeps
    // GC and suspension busy.
    let base = gc_stress_cfg();
    let trace = ssd_readretry::workloads::synth::gc_stress_trace(base.max_lpns(), 2_000);
    let traces = vec![trace];
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let reference = run_qd_sweep_sharded(&base, &traces, point, &[16], &mechanisms, &setup, 1, 1);
    assert!(
        reference.iter().all(|c| c.events > 0),
        "stress cells must simulate work"
    );
    for shards in [1u32, 2, 4] {
        for jobs in [1usize, 2] {
            for rerun in 0..2 {
                let cells = run_qd_sweep_sharded(
                    &base,
                    &traces,
                    point,
                    &[16],
                    &mechanisms,
                    &setup,
                    jobs,
                    shards,
                );
                assert_eq!(
                    reference, cells,
                    "sharded sweep diverged at shards = {shards}, jobs = {jobs}, \
                     rerun = {rerun}"
                );
            }
        }
    }
}

#[test]
fn worker_budget_is_monotone_clamped_and_never_oversubscribes() {
    // The budget that turns `--shards N` into actual threads: monotone in
    // the shard request, never above it, never below one, and divided
    // fairly when `--jobs` workers each drive their own device.
    let mut prev = 0usize;
    for shards in 0u32..=8 {
        let w = worker_budget(shards, 1);
        assert!(w >= 1, "budget must always allow inline execution");
        assert!(
            w <= shards.max(1) as usize,
            "budget exceeds the shard request: {w} > {shards}"
        );
        assert!(w >= prev, "budget must be monotone in shards");
        prev = w;
    }
    for jobs in 1usize..=4 {
        assert!(
            worker_budget(4, jobs) <= worker_budget(4, 1),
            "more concurrent jobs must never widen the per-run budget"
        );
    }
}

#[test]
fn sharded_speedup_smoke_stays_within_sync_overhead_bounds() {
    // A wall-clock smoke, not a benchmark: on a multi-core host the sharded
    // engine should speed up, and on any host the windowed-barrier
    // synchronization must not make `--shards 4` pathologically slower than
    // the serial pass over the same events. The loose factor keeps the test
    // meaningful (it catches a sync-protocol regression that serializes on
    // locks) without flaking under CI load.
    let rpt = ReadTimingParamTable::default();
    let base = gc_stress_cfg().with_condition(OperatingCondition::new(2000.0, 6.0, 30.0));
    let footprint = base.max_lpns();
    let trace = ssd_readretry::workloads::synth::gc_stress_trace(footprint, 4_000).requests;
    let front = HostQueueConfig::single(Mode::closed_loop(16));
    let timed = |workers: usize| {
        let mut arena = ShardArena::new();
        let t0 = Instant::now();
        let report = run_sharded_queued_from(
            &mut arena,
            base.clone(),
            &|| Mechanism::PnAr2.make_controller(&rpt),
            footprint,
            &trace,
            &front,
            None,
            workers,
        )
        .expect("valid configuration");
        (report, t0.elapsed().as_secs_f64())
    };
    // Warm-up run so allocator effects don't skew the first measurement.
    let _ = timed(1);
    let (serial, serial_wall) = timed(1);
    let (wide, wide_wall) = timed(worker_budget(4, 1));
    assert_eq!(serial, wide, "worker count changed the report");
    assert!(
        wide_wall < serial_wall * 10.0 + 0.05,
        "sharded run is pathologically slower than serial: \
         {wide_wall:.3}s vs {serial_wall:.3}s"
    );
}
