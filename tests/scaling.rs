//! Geometry-scaling check: the evaluation uses a capacity-scaled SSD
//! (64 blocks/plane instead of the paper's 1,888) for test-budget reasons;
//! this test asserts the response-time *ratios* between mechanisms are
//! insensitive to that scaling (DESIGN.md §7).

use ssd_readretry::prelude::*;

fn ratio_at(blocks_per_plane: u32) -> (f64, f64) {
    let mut cfg = SsdConfig::scaled_for_tests();
    cfg.chip.blocks_per_plane = blocks_per_plane;
    let point = OperatingPoint::new(2000.0, 6.0);
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Usr1.synthesize(1_500, 17);
    let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt);
    let pr2 = run_one(&cfg, Mechanism::Pr2, point, &trace, &rpt);
    let pnar2 = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    (
        pr2.avg_response_us() / baseline.avg_response_us(),
        pnar2.avg_response_us() / baseline.avg_response_us(),
    )
}

#[test]
fn normalized_response_times_are_geometry_insensitive() {
    let (pr2_small, pnar2_small) = ratio_at(32);
    let (pr2_large, pnar2_large) = ratio_at(128);
    assert!(
        (pr2_small - pr2_large).abs() < 0.05,
        "PR2 ratio drifts with geometry: {pr2_small} vs {pr2_large}"
    );
    assert!(
        (pnar2_small - pnar2_large).abs() < 0.05,
        "PnAR2 ratio drifts with geometry: {pnar2_small} vs {pnar2_large}"
    );
}
