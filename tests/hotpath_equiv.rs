//! Hot-path equivalence suite: every performance switch must be
//! **semantics-neutral**. The page-profile cache, the pooled transaction
//! slab, the timing-wheel event queue, the `auto` event-backend policy, the
//! channel-sharded engine's worker count, and the cross-run arena may only
//! change wall-clock — a run's
//! [`ssd_readretry::sim::metrics::SimReport`] must be bit-identical with any
//! combination of them on or off, across workload families, replay modes,
//! and queue depths.

use ssd_readretry::prelude::*;
use ssd_readretry::sim::replay::ReplayMode as Mode;

fn base_cfg() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0xE9_BEEF)
}

fn workloads() -> Vec<Trace> {
    vec![
        MsrcWorkload::Mds1.synthesize(300, 11),
        YcsbWorkload::C.synthesize(300, 11),
    ]
}

fn modes() -> Vec<Mode> {
    vec![Mode::OpenLoop, Mode::closed_loop(1), Mode::closed_loop(16)]
}

/// Runs every (workload, mode) cell under two configs and asserts equality.
fn assert_equivalent(reference: &SsdConfig, variant: &SsdConfig, what: &str) {
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(2000.0, 6.0);
    for mechanism in [Mechanism::Baseline, Mechanism::PnAr2] {
        for trace in workloads() {
            for mode in modes() {
                let a = run_one_with_mode(reference, mechanism, point, &trace, &rpt, mode);
                let b = run_one_with_mode(variant, mechanism, point, &trace, &rpt, mode);
                assert_eq!(
                    a,
                    b,
                    "{what} changed the report: {} on {} under {:?}",
                    mechanism.name(),
                    trace.name,
                    mode
                );
            }
        }
    }
}

#[test]
fn profile_cache_is_bit_neutral_across_msrc_ycsb_and_queue_depths() {
    let cached = base_cfg();
    let mut plain = base_cfg();
    plain.hotpath.profile_cache = false;
    assert_equivalent(&cached, &plain, "profile cache");
}

#[test]
fn txn_slab_reuse_is_bit_neutral_across_msrc_ycsb_and_queue_depths() {
    let pooled = base_cfg();
    let mut fresh = base_cfg();
    fresh.hotpath.txn_slab_reuse = false;
    assert_equivalent(&pooled, &fresh, "transaction slab reuse");
}

#[test]
fn all_hotpath_switches_off_matches_all_on() {
    let fast = base_cfg();
    let mut slow = base_cfg();
    slow.hotpath.profile_cache = false;
    slow.hotpath.txn_slab_reuse = false;
    assert_equivalent(&fast, &slow, "hot-path switches");
}

#[test]
fn timing_wheel_is_bit_identical_to_the_heap_across_msrc_ycsb_and_queue_depths() {
    // The tentpole contract: swapping the event core from the binary heap
    // to the hierarchical timing wheel may only change wall-clock.
    let heap = base_cfg();
    let wheel = base_cfg().with_timing_wheel(true);
    assert_equivalent(&heap, &wheel, "timing-wheel event queue");
}

#[test]
fn timing_wheel_composes_with_the_other_hotpath_switches() {
    // Wheel on with everything else off vs. heap with everything on — the
    // switches must stay independent.
    let fast = base_cfg().with_timing_wheel(true);
    let mut slow = base_cfg();
    slow.hotpath.profile_cache = false;
    slow.hotpath.txn_slab_reuse = false;
    assert_equivalent(&fast, &slow, "timing wheel + hot-path switches");
}

#[test]
fn timing_wheel_is_bit_identical_under_multi_queue_wrr() {
    // Submission-queue waits and WRR arbitration schedule many same-tick
    // events; the wheel's FIFO tie-break must hold through them.
    let rpt = ReadTimingParamTable::default();
    let front = HostQueueConfig::uniform(2, Mode::closed_loop(8))
        .with_arb(ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin)
        .with_weights(&[3, 1])
        .with_window(8);
    for trace in workloads() {
        let run = |cfg: &SsdConfig| {
            let cfg = cfg.clone().with_condition(
                ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
            );
            Ssd::new(
                cfg,
                Mechanism::PnAr2.make_controller(&rpt),
                trace.footprint_pages,
            )
            .expect("valid configuration")
            .run_with_queues(&trace.requests, &front)
        };
        let heap_report = run(&base_cfg());
        let wheel_report = run(&base_cfg().with_timing_wheel(true));
        assert_eq!(
            heap_report, wheel_report,
            "timing wheel changed a multi-queue report on {}",
            trace.name
        );
    }
}

#[test]
fn timing_wheel_is_bit_identical_under_every_gc_policy() {
    // GC preemption/resume scheduling is the densest source of same-tick
    // event bursts; every policy must replay identically on the wheel.
    let rpt = ReadTimingParamTable::default();
    let policies = [
        GcPolicy::Greedy,
        GcPolicy::ReadPreempt { budget: 2 },
        GcPolicy::WindowedTokens {
            tokens: 1,
            window_us: 5_000,
        },
        GcPolicy::QueueShield { queue: 0 },
    ];
    let gc_heavy = |policy: GcPolicy, wheel: bool| {
        let mut cfg = base_cfg().with_gc_policy(policy).with_timing_wheel(wheel);
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        let footprint = cfg.max_lpns();
        let trace = ssd_readretry::workloads::synth::gc_stress_trace(footprint, 2_000).requests;
        let front = HostQueueConfig::uniform(2, Mode::closed_loop(16))
            .with_arb(ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin)
            .with_weights(&[2, 1])
            .with_window(16);
        Ssd::new(cfg, Mechanism::PnAr2.make_controller(&rpt), footprint)
            .expect("valid configuration")
            .run_with_queues(&trace, &front)
    };
    for policy in policies {
        let heap = gc_heavy(policy, false);
        let wheel = gc_heavy(policy, true);
        assert_eq!(
            heap, wheel,
            "timing wheel changed a report under {policy:?}"
        );
        assert!(heap.gc_collections > 0, "{policy:?} run must exercise GC");
    }
}

#[test]
fn arena_reuse_alternating_backends_matches_fresh_construction() {
    // One arena serving heap and wheel runs back to back — the pooled event
    // queue is rebuilt to match each run's config — must stay bit-identical
    // to fresh per-run simulators of the same config.
    let rpt = ReadTimingParamTable::default();
    let mut arena = SimArena::new();
    let trace = MsrcWorkload::Mds1.synthesize(250, 5);
    let mode = Mode::closed_loop(8);
    for wheel in [true, false, true, true, false] {
        let base = base_cfg().with_timing_wheel(wheel).with_condition(
            ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
        );
        let pooled = Ssd::run_pooled(
            &mut arena,
            base.clone(),
            Mechanism::PnAr2.make_controller(&rpt),
            trace.footprint_pages,
            &trace.requests,
            mode,
        )
        .expect("valid configuration");
        let fresh = Ssd::new(
            base,
            Mechanism::PnAr2.make_controller(&rpt),
            trace.footprint_pages,
        )
        .expect("valid configuration")
        .run_with(&trace.requests, mode);
        assert_eq!(pooled, fresh, "arena run diverged with wheel = {wheel}");
    }
}

#[test]
fn arena_reuse_across_cells_matches_fresh_construction() {
    // One arena carried across different traces, footprints, mechanisms and
    // operating points — exactly what a matrix worker does — must produce
    // the same reports as building a fresh simulator per cell.
    let rpt = ReadTimingParamTable::default();
    let mut arena = SimArena::new();
    let cells: Vec<(Trace, Mechanism, OperatingPoint, Mode)> = vec![
        (
            MsrcWorkload::Mds1.synthesize(250, 5),
            Mechanism::Baseline,
            OperatingPoint::new(2000.0, 12.0),
            Mode::OpenLoop,
        ),
        (
            YcsbWorkload::C.synthesize(180, 5),
            Mechanism::PnAr2,
            OperatingPoint::new(1000.0, 6.0),
            Mode::closed_loop(8),
        ),
        (
            MsrcWorkload::Stg0.synthesize(220, 6),
            Mechanism::Pr2,
            OperatingPoint::new(2000.0, 6.0),
            Mode::open_loop_rate(2.0),
        ),
    ];
    for (trace, mechanism, point, mode) in &cells {
        let base =
            base_cfg().with_condition(ssd_readretry::flash::calibration::OperatingCondition::new(
                point.pec,
                point.retention_months,
                30.0,
            ));
        let pooled = Ssd::run_pooled(
            &mut arena,
            base.clone(),
            mechanism.make_controller(&rpt),
            trace.footprint_pages,
            &trace.requests,
            *mode,
        )
        .expect("valid configuration");
        let fresh = Ssd::new(base, mechanism.make_controller(&rpt), trace.footprint_pages)
            .expect("valid configuration")
            .run_with(&trace.requests, *mode);
        assert_eq!(
            pooled,
            fresh,
            "arena run diverged for {} on {}",
            mechanism.name(),
            trace.name
        );
    }
}

#[test]
fn matrix_runner_matches_per_cell_fresh_runs() {
    // The matrix runner's shared-arena, shared-Arc-config path must report
    // exactly what independent run_one calls report.
    let base = base_cfg();
    let traces = vec![
        (MsrcWorkload::Mds1.synthesize(200, 3), true),
        (YcsbWorkload::C.synthesize(150, 3), true),
    ];
    let points = [
        OperatingPoint::new(1000.0, 6.0),
        OperatingPoint::new(2000.0, 12.0),
    ];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2, Mechanism::NoRR];
    let cells = run_matrix(&base, &traces, &points, &mechanisms);
    let rpt = ReadTimingParamTable::default();
    for c in &cells {
        let (trace, _) = traces
            .iter()
            .find(|(t, _)| t.name == c.workload)
            .expect("cell names a known trace");
        let mechanism = mechanisms
            .iter()
            .copied()
            .find(|m| m.name() == c.mechanism)
            .expect("cell names a known mechanism");
        let report = run_one(&base, mechanism, c.point, trace, &rpt);
        assert_eq!(c.avg_response_us, report.avg_response_us());
        assert_eq!(c.read_latency, report.read_latency);
        assert_eq!(c.events, report.events_processed);
        assert!(c.events > 0, "a simulated cell must process events");
    }
}

#[test]
fn single_queue_rr_front_end_is_bit_identical_to_plain_replay() {
    // The multi-queue front end degenerates at N = 1: one round-robin queue
    // with no admission window must replay exactly like the plain
    // single-generator path — same events, same latencies, same report,
    // bit for bit — for every replay mode.
    let rpt = ReadTimingParamTable::default();
    let base = base_cfg().with_condition(
        ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
    );
    let modes = vec![
        Mode::OpenLoop,
        Mode::open_loop_rate(2.0),
        Mode::closed_loop(1),
        Mode::closed_loop(16),
    ];
    for trace in workloads() {
        for &mode in &modes {
            let plain = Ssd::new(
                base.clone(),
                Mechanism::PnAr2.make_controller(&rpt),
                trace.footprint_pages,
            )
            .expect("valid configuration")
            .run_with(&trace.requests, mode);
            let queued = Ssd::new(
                base.clone(),
                Mechanism::PnAr2.make_controller(&rpt),
                trace.footprint_pages,
            )
            .expect("valid configuration")
            .run_with_queues(&trace.requests, &HostQueueConfig::single(mode));
            assert_eq!(
                plain, queued,
                "single-queue front end diverged on {} under {:?}",
                trace.name, mode
            );
            // The lone per-queue entry mirrors the aggregate classes.
            assert_eq!(queued.per_queue.len(), 1);
            assert_eq!(queued.per_queue[0].reads, queued.read_latency);
            assert_eq!(queued.per_queue[0].writes, queued.write_latency);
            assert_eq!(queued.per_queue[0].completed, queued.requests_completed);
        }
    }
}

#[test]
fn hotpath_switches_are_bit_neutral_under_multi_queue_wrr() {
    // The profile cache and transaction-slab pooling must stay
    // semantics-neutral when requests arrive through the windowed WRR
    // front end (submission-queue waits, arbitration, per-queue metrics).
    let rpt = ReadTimingParamTable::default();
    let front = HostQueueConfig::uniform(2, Mode::closed_loop(8))
        .with_arb(ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin)
        .with_weights(&[3, 1])
        .with_window(8);
    let mut slow = base_cfg();
    slow.hotpath.profile_cache = false;
    slow.hotpath.txn_slab_reuse = false;
    for trace in workloads() {
        let run = |cfg: &SsdConfig| {
            let cfg = cfg.clone().with_condition(
                ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
            );
            Ssd::new(
                cfg,
                Mechanism::PnAr2.make_controller(&rpt),
                trace.footprint_pages,
            )
            .expect("valid configuration")
            .run_with_queues(&trace.requests, &front)
        };
        let fast_report = run(&base_cfg());
        let slow_report = run(&slow);
        assert_eq!(
            fast_report, slow_report,
            "hot-path switches changed a multi-queue report on {}",
            trace.name
        );
        assert_eq!(fast_report.per_queue.len(), 2);
    }
}

#[test]
fn explicit_greedy_gc_policy_is_bit_identical_to_the_default() {
    // The GC-policy subsystem must be invisible until a non-default policy
    // is chosen: a config that sets `GcPolicy::Greedy` explicitly replays
    // exactly like one that never mentions it — the in-test proxy for the
    // CI stdout diff pinning today's default output.
    let implicit = base_cfg();
    assert_eq!(implicit.gc_policy, GcPolicy::Greedy);
    let explicit = base_cfg().with_gc_policy(GcPolicy::Greedy);
    assert_equivalent(&implicit, &explicit, "explicit Greedy GC policy");
}

#[test]
fn hotpath_switches_are_bit_neutral_under_every_gc_policy() {
    // The hot-path contract extends to the GC-policy subsystem: profile
    // caching and transaction pooling may not perturb a run under any
    // policy, including on a GC-heavy workload where the policies actually
    // make decisions.
    let rpt = ReadTimingParamTable::default();
    let policies = [
        GcPolicy::ReadPreempt { budget: 2 },
        GcPolicy::WindowedTokens {
            tokens: 1,
            window_us: 5_000,
        },
        GcPolicy::QueueShield { queue: 0 },
    ];
    // Small blocks so the write-heavy trace keeps GC running.
    let gc_heavy = |policy: GcPolicy, hotpath_on: bool| {
        let mut cfg = base_cfg().with_gc_policy(policy);
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        cfg.hotpath.profile_cache = hotpath_on;
        cfg.hotpath.txn_slab_reuse = hotpath_on;
        let footprint = cfg.max_lpns();
        // The shared GC-stress generator — the same trace `repro
        // --gc-stress` and `tests/gc_policy.rs` run.
        let trace = ssd_readretry::workloads::synth::gc_stress_trace(footprint, 2_000).requests;
        let front = HostQueueConfig::uniform(2, Mode::closed_loop(16))
            .with_arb(ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin)
            .with_weights(&[2, 1])
            .with_window(16);
        Ssd::new(cfg, Mechanism::PnAr2.make_controller(&rpt), footprint)
            .expect("valid configuration")
            .run_with_queues(&trace, &front)
    };
    for policy in policies {
        let fast = gc_heavy(policy, true);
        let slow = gc_heavy(policy, false);
        assert_eq!(
            fast, slow,
            "hot-path switches changed a report under {policy:?}"
        );
        assert!(fast.gc_collections > 0, "{policy:?} run must exercise GC");
    }
}

#[test]
fn warm_started_qd_sweep_is_bit_identical_to_the_cold_start() {
    // The warm-start contract: forking a preconditioned device image across
    // sweep cells (`--from-image`) may only change wall-clock — the cells
    // must match the cold re-preconditioning path bit for bit, serial and
    // work-stealing alike.
    let base = base_cfg();
    let traces = workloads();
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let depths = [1u32, 8];
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages))
        .expect("valid configuration");
    let cold = run_qd_sweep_queued(&base, &traces, point, &depths, &mechanisms, &setup, 1);
    for jobs in [1, 2] {
        let warm = run_qd_sweep_queued_from(
            &base,
            &traces,
            point,
            &depths,
            &mechanisms,
            &setup,
            jobs,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            cold, warm,
            "warm-started QD sweep diverged at jobs = {jobs}"
        );
    }
}

#[test]
fn warm_started_rate_sweep_is_bit_identical_to_the_cold_start() {
    let base = base_cfg();
    let traces = workloads();
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let rates = [1.0, 2.0];
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages))
        .expect("valid configuration");
    let cold = run_rate_sweep_queued(&base, &traces, point, &rates, &mechanisms, &setup, 1);
    for jobs in [1, 2] {
        let warm = run_rate_sweep_queued_from(
            &base,
            &traces,
            point,
            &rates,
            &mechanisms,
            &setup,
            jobs,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            cold, warm,
            "warm-started rate sweep diverged at jobs = {jobs}"
        );
    }
}

#[test]
fn warm_started_matrix_is_bit_identical_to_the_cold_start() {
    let base = base_cfg();
    let traces = vec![
        (MsrcWorkload::Mds1.synthesize(200, 3), true),
        (YcsbWorkload::C.synthesize(150, 3), true),
    ];
    let points = [
        OperatingPoint::new(1000.0, 6.0),
        OperatingPoint::new(2000.0, 12.0),
    ];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2, Mechanism::NoRR];
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|(t, _)| t.footprint_pages))
        .expect("valid configuration");
    let cold = run_matrix_parallel(&base, &traces, &points, &mechanisms, 1);
    for jobs in [1, 2] {
        let warm = run_matrix_parallel_from(&base, &traces, &points, &mechanisms, jobs, &bank)
            .expect("bank covers the matrix");
        assert_eq!(cold, warm, "warm-started matrix diverged at jobs = {jobs}");
    }
}

#[test]
fn warm_started_gc_stress_multi_queue_sweep_matches_the_cold_start() {
    // The acceptance case of the device-image work: the GC-stress sweep
    // under a 2-queue WRR front end, forked from an aged image, must match
    // the cold path while actually exercising garbage collection.
    let mut base = base_cfg().with_gc_policy(GcPolicy::ReadPreempt { budget: 2 });
    base.chip.blocks_per_plane = 16;
    base.chip.pages_per_block = 12;
    let trace = ssd_readretry::workloads::synth::gc_stress_trace(base.max_lpns(), 2_000);
    let traces = vec![trace];
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup {
        queues: 2,
        arb: ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin,
        burst: 1,
        weights: Some(vec![2, 1]),
        window: None,
    };
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages))
        .expect("valid configuration");
    let cold = run_qd_sweep_queued(&base, &traces, point, &[16], &mechanisms, &setup, 1);
    for jobs in [1, 2] {
        let warm = run_qd_sweep_queued_from(
            &base,
            &traces,
            point,
            &[16],
            &mechanisms,
            &setup,
            jobs,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            cold, warm,
            "warm-started GC-stress sweep diverged at jobs = {jobs}"
        );
    }
    assert!(
        cold.iter().all(|c| c.events > 0),
        "stress cells must simulate work"
    );
}

#[test]
fn mismatched_banks_are_rejected_with_a_typed_error() {
    // A bank built under different model inputs (seed) or lacking a
    // footprint must be refused up front — never silently replayed into
    // different results.
    let base = base_cfg();
    let traces = workloads();
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline];
    let setup = QueueSetup::single();
    let wrong_seed = ImageBank::preconditioned(
        &base.clone().with_seed(0xD1FF),
        traces.iter().map(|t| t.footprint_pages),
    )
    .expect("valid configuration");
    assert!(run_qd_sweep_queued_from(
        &base,
        &traces,
        point,
        &[4],
        &mechanisms,
        &setup,
        1,
        &wrong_seed
    )
    .is_err());
    let missing_footprint =
        ImageBank::preconditioned(&base, [traces[0].footprint_pages + 1]).expect("valid");
    assert!(run_qd_sweep_queued_from(
        &base,
        &traces,
        point,
        &[4],
        &mechanisms,
        &setup,
        1,
        &missing_footprint
    )
    .is_err());
}

#[test]
fn auto_event_backend_is_bit_neutral_across_backends_and_depths() {
    // The `auto` policy only chooses *which* queue runs the events; every
    // choice is semantics-neutral, so auto must match both the heap default
    // and the explicit wheel — below the crossover depth (where it keeps the
    // heap) and at depths past it (where it switches to the wheel).
    use ssd_readretry::sim::config::EventBackend;
    let heap = base_cfg();
    let auto = base_cfg().with_event_backend(EventBackend::Auto);
    let wheel = base_cfg().with_event_backend(EventBackend::Wheel);
    assert_equivalent(&heap, &auto, "auto event backend (vs heap)");
    assert_equivalent(&wheel, &auto, "auto event backend (vs wheel)");
    // Past the crossover the hint flips auto to the wheel: drive a deep
    // closed-loop multi-queue front end and pin the report either way.
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Mds1.synthesize(300, 11);
    let deep = HostQueueConfig::uniform(2, Mode::closed_loop(128));
    let run =
        |cfg: &SsdConfig| {
            let cfg = cfg.clone().with_condition(
                ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
            );
            Ssd::new(
                cfg,
                Mechanism::PnAr2.make_controller(&rpt),
                trace.footprint_pages,
            )
            .expect("valid configuration")
            .run_with_queues(&trace.requests, &deep)
        };
    assert!(
        deep.steady_depth_hint() >= ssd_readretry::sim::config::AUTO_WHEEL_CROSSOVER_DEPTH,
        "test front end must sit past the auto crossover"
    );
    assert_eq!(
        run(&heap),
        run(&auto),
        "auto backend changed a deep-queue report"
    );
}

/// Runs the GC-stress multi-queue WRR workload on the channel-sharded
/// engine with the given worker budget (the same cell the CI shard smoke
/// diffs through `repro sweep-qd --gc-stress`).
fn sharded_gc_stress(cfg: &SsdConfig, workers: usize) -> ssd_readretry::sim::metrics::SimReport {
    let rpt = ReadTimingParamTable::default();
    let footprint = cfg.max_lpns();
    let trace = ssd_readretry::workloads::synth::gc_stress_trace(footprint, 2_000).requests;
    let front = HostQueueConfig::uniform(2, Mode::closed_loop(16))
        .with_arb(ssd_readretry::sim::config::ArbPolicy::WeightedRoundRobin)
        .with_weights(&[2, 1])
        .with_window(16);
    let mut arena = ShardArena::new();
    run_sharded_queued_from(
        &mut arena,
        cfg.clone(),
        &|| Mechanism::PnAr2.make_controller(&rpt),
        footprint,
        &trace,
        &front,
        None,
        workers,
    )
    .expect("valid configuration")
}

#[test]
fn sharded_engine_is_worker_invariant_under_gc_stress_multi_queue_wrr() {
    // The tentpole contract: the worker budget only selects which thread
    // executes a channel core — `--shards N` must be bit-identical to
    // `--shards 1` even while garbage collection, read-over-program
    // suspension, and WRR arbitration are all active.
    let mut cfg = base_cfg().with_condition(
        ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
    );
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    let serial = sharded_gc_stress(&cfg, 1);
    assert!(serial.gc_collections > 0, "run must exercise GC");
    for workers in [2, 4] {
        assert_eq!(
            serial,
            sharded_gc_stress(&cfg, workers),
            "sharded report diverged at workers = {workers}"
        );
    }
}

#[test]
fn sharded_engine_wheel_is_bit_identical_to_heap() {
    // Both hot-path switches compose: each shard core's event queue may sit
    // on the heap or the timing wheel without perturbing the merged report.
    let mut cfg = base_cfg().with_condition(
        ssd_readretry::flash::calibration::OperatingCondition::new(2000.0, 6.0, 30.0),
    );
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    let heap = sharded_gc_stress(&cfg, 2);
    let wheel = sharded_gc_stress(&cfg.clone().with_timing_wheel(true), 2);
    assert_eq!(heap, wheel, "timing wheel changed a sharded report");
}

#[test]
fn single_device_array_runners_delegate_bit_identically() {
    // The array-layer gate: `--devices 1` must route through the exact
    // pre-array code path. The `run_*_array_from` runners with a
    // single-device setup return the same cells, bit for bit, as the
    // `run_*_sharded_from` runners they wrap — across the matrix and both
    // load sweeps, serial and sharded, at every worker count.
    let base = base_cfg();
    let traces = workloads();
    let matrix_traces: Vec<(Trace, bool)> = traces.iter().map(|t| (t.clone(), true)).collect();
    let point = OperatingPoint::new(2000.0, 6.0);
    let points = [point];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let depths = [1u32, 8];
    let rates = [1.0, 2.0];
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages))
        .expect("valid configuration");
    let single = ArraySetup::single();
    assert!(!single.is_array());
    for (jobs, shards) in [(1usize, 0u32), (2, 2)] {
        let matrix = run_matrix_sharded_from(
            &base,
            &matrix_traces,
            &points,
            &mechanisms,
            jobs,
            shards,
            &bank,
        )
        .expect("bank covers the matrix");
        let matrix_arr = run_matrix_array_from(
            &base,
            &matrix_traces,
            &points,
            &mechanisms,
            jobs,
            shards,
            single,
            &bank,
        )
        .expect("bank covers the matrix");
        assert_eq!(
            matrix, matrix_arr,
            "single-device array matrix diverged at jobs={jobs} shards={shards}"
        );
        let qd = run_qd_sweep_sharded_from(
            &base,
            &traces,
            point,
            &depths,
            &mechanisms,
            &setup,
            jobs,
            shards,
            &bank,
        )
        .expect("bank covers the sweep");
        let qd_arr = run_qd_sweep_array_from(
            &base,
            &traces,
            point,
            &depths,
            &mechanisms,
            &setup,
            jobs,
            shards,
            single,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            qd, qd_arr,
            "single-device array QD sweep diverged at jobs={jobs} shards={shards}"
        );
        assert!(qd_arr.iter().all(|c| c.array.is_none()));
        let rate = run_rate_sweep_sharded_from(
            &base,
            &traces,
            point,
            &rates,
            &mechanisms,
            &setup,
            jobs,
            shards,
            &bank,
        )
        .expect("bank covers the sweep");
        let rate_arr = run_rate_sweep_array_from(
            &base,
            &traces,
            point,
            &rates,
            &mechanisms,
            &setup,
            jobs,
            shards,
            single,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            rate, rate_arr,
            "single-device array rate sweep diverged at jobs={jobs} shards={shards}"
        );
    }
}

#[test]
fn events_processed_is_deterministic_and_nonzero() {
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Mds1.synthesize(150, 2);
    let point = OperatingPoint::new(2000.0, 6.0);
    let a = run_one(&base_cfg(), Mechanism::Baseline, point, &trace, &rpt);
    let b = run_one(&base_cfg(), Mechanism::Baseline, point, &trace, &rpt);
    assert_eq!(a.events_processed, b.events_processed);
    // Every request needs at least an arrival event plus flash work.
    assert!(a.events_processed > a.requests_completed);
}
