//! Array-layer suite: the `DeviceSet`/`Placement` stack must (1) route
//! every request to exactly one device under every policy, (2) reduce to
//! the legacy single-device engine bit-for-bit at `devices = 1`, (3) stay
//! deterministic across reruns and worker counts, (4) attribute array-tail
//! excursions to the per-device GC activity that caused them, and (5) keep
//! computing array quantiles from concatenated raw samples — never from
//! per-device quantiles — when redundancy fans requests out.

use ssd_readretry::prelude::*;
use ssd_readretry::sim::array::route_indices;

fn base_cfg() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0xA88A_71E5)
}

fn trace() -> Trace {
    MsrcWorkload::Mds1.synthesize(400, 17)
}

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LpnHash,
    PlacementPolicy::HotCold,
];

#[test]
fn every_placement_is_an_exact_partition() {
    // Each request lands on exactly one in-range device, and splitting the
    // trace by the routing preserves per-device arrival order and loses
    // nothing: the split sub-traces re-interleave to the original trace.
    let t = trace();
    for devices in [2u32, 3, 4, 7] {
        for policy in POLICIES {
            let routed = route_indices(&t.requests, devices, policy, t.footprint_pages);
            assert_eq!(routed.len(), t.requests.len());
            assert!(
                routed.iter().all(|&d| d < devices),
                "{policy:?} out of range"
            );
            let split = t.split_routed(devices, |i, r| {
                policy.route(i, r, devices, t.footprint_pages)
            });
            assert_eq!(split.len(), devices as usize);
            let total: usize = split.iter().map(|s| s.requests.len()).sum();
            assert_eq!(total, t.requests.len(), "{policy:?} dropped requests");
            // Walk the original trace and consume each sub-trace in order:
            // per-device order preserved ⇔ each cursor advances monotonically.
            let mut cursors = vec![0usize; devices as usize];
            for (i, &d) in routed.iter().enumerate() {
                let sub = &split[d as usize];
                let k = cursors[d as usize];
                assert_eq!(
                    sub.requests[k].lpn, t.requests[i].lpn,
                    "{policy:?} reordered device {d} at request {i}"
                );
                cursors[d as usize] += 1;
            }
            assert_eq!(
                cursors,
                split.iter().map(|s| s.requests.len()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn round_robin_stripes_by_request_index() {
    let t = trace();
    let routed = route_indices(
        &t.requests,
        4,
        PlacementPolicy::RoundRobin,
        t.footprint_pages,
    );
    for (i, &d) in routed.iter().enumerate() {
        assert_eq!(d as usize, i % 4, "stripe must be exact round-robin");
    }
}

#[test]
fn hash_routing_is_stable_and_lpn_consistent() {
    // Same trace, same answer (reruns cannot re-balance), and one LPN never
    // splits across devices — the consistent-hashing contract.
    let t = trace();
    let a = route_indices(&t.requests, 5, PlacementPolicy::LpnHash, t.footprint_pages);
    let b = route_indices(&t.requests, 5, PlacementPolicy::LpnHash, t.footprint_pages);
    assert_eq!(a, b, "hash routing must be deterministic");
    let mut by_lpn = std::collections::HashMap::new();
    for (req, &d) in t.requests.iter().zip(&a) {
        let prev = by_lpn.insert(req.lpn, d);
        assert!(
            prev.is_none() || prev == Some(d),
            "lpn {} split across devices",
            req.lpn
        );
    }
}

#[test]
fn tier_routing_pins_the_hot_quarter_to_the_first_half() {
    let t = trace();
    let devices = 4u32;
    let hot_devices = devices.div_ceil(2);
    let routed = route_indices(
        &t.requests,
        devices,
        PlacementPolicy::HotCold,
        t.footprint_pages,
    );
    for (req, &d) in t.requests.iter().zip(&routed) {
        if req.lpn < t.footprint_pages / 4 {
            assert!(d < hot_devices, "hot lpn {} left the hot tier", req.lpn);
        } else {
            assert!(
                d >= hot_devices,
                "cold lpn {} entered the hot tier",
                req.lpn
            );
        }
    }
}

/// Runs one closed-loop array replay through the serve-style per-query
/// runner and returns its report.
fn array_run(
    devices: u32,
    policy: PlacementPolicy,
    mechanism: Mechanism,
    qd: u32,
    shards: u32,
) -> ArrayReport {
    let base = base_cfg();
    let t = trace();
    let routed = t.split_routed(devices, |i, r| {
        policy.route(i, r, devices, t.footprint_pages)
    });
    let mut set = DeviceSet::new(devices).expect("devices >= 1");
    run_one_queued_array_from(
        &mut set,
        &base,
        mechanism,
        OperatingPoint::new(2000.0, 6.0),
        &routed,
        t.footprint_pages,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        qd,
        None,
        shards,
    )
    .expect("valid array configuration")
}

#[test]
fn single_device_array_matches_the_legacy_engine_across_mechanisms_and_qd() {
    // `devices = 1` routes everything to device 0; the lone device's report
    // must equal the legacy per-query runner bit for bit.
    let base = base_cfg();
    let t = trace();
    let rpt = ReadTimingParamTable::default();
    let setup = QueueSetup::single();
    let point = OperatingPoint::new(2000.0, 6.0);
    for mechanism in [Mechanism::Baseline, Mechanism::Pr2, Mechanism::PnAr2] {
        for qd in [1u32, 8] {
            let array = array_run(1, PlacementPolicy::RoundRobin, mechanism, qd, 0);
            let mut arena = SimArena::new();
            let legacy = run_one_queued_from(
                &mut arena, &base, mechanism, point, &t, &rpt, &setup, qd, None,
            );
            assert_eq!(array.devices.len(), 1);
            assert_eq!(
                array.devices[0],
                legacy,
                "single-device array diverged for {} at qd={qd}",
                mechanism.name()
            );
            assert_eq!(array.requests_completed, legacy.requests_completed);
            assert_eq!(array.events_processed, legacy.events_processed);
        }
    }
}

#[test]
fn array_runs_are_bit_identical_across_reruns_and_worker_budgets() {
    // Device workers and shard workers only choose *where* a device core
    // executes; the merged report must not move. The unsharded engine
    // (`shards = 0`) is its own deterministic baseline; the sharded engine
    // is bit-identical across every shard count >= 1.
    let unsharded = array_run(3, PlacementPolicy::LpnHash, Mechanism::PnAr2, 8, 0);
    assert_eq!(unsharded.device_count(), 3);
    assert!(unsharded.requests_completed > 0);
    assert_eq!(
        unsharded,
        array_run(3, PlacementPolicy::LpnHash, Mechanism::PnAr2, 8, 0),
        "unsharded array rerun diverged"
    );
    let reference = array_run(3, PlacementPolicy::LpnHash, Mechanism::PnAr2, 8, 1);
    for shards in [1u32, 2, 4] {
        let rerun = array_run(3, PlacementPolicy::LpnHash, Mechanism::PnAr2, 8, shards);
        assert_eq!(
            reference, rerun,
            "sharded array run diverged at shards={shards}"
        );
    }
}

#[test]
fn array_sweep_is_bit_identical_across_jobs_and_reruns() {
    let base = base_cfg();
    let traces = vec![trace()];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let array = ArraySetup::new(4, PlacementPolicy::RoundRobin);
    let reference = run_qd_sweep_array(
        &base,
        &traces,
        OperatingPoint::new(2000.0, 6.0),
        &[1, 8],
        &mechanisms,
        &setup,
        1,
        0,
        array,
    );
    for jobs in [1usize, 2] {
        let rerun = run_qd_sweep_array(
            &base,
            &traces,
            OperatingPoint::new(2000.0, 6.0),
            &[1, 8],
            &mechanisms,
            &setup,
            jobs,
            0,
            array,
        );
        assert_eq!(reference, rerun, "array sweep diverged at jobs={jobs}");
    }
    for c in &reference {
        let a = c.array.as_ref().expect("array cells carry array stats");
        assert_eq!(a.devices, 4);
        assert_eq!(a.placement, "rr");
        assert_eq!(a.per_device.len(), 4);
        // Per-device attribution lives in `array`, not the per-queue fields.
        assert!(c.per_queue_reads.is_empty());
        assert!(c.per_queue_gc.is_empty());
        let merged: u64 = a.per_device.iter().map(|d| d.reads.count).sum();
        assert_eq!(merged, c.reads.count, "array reads must partition exactly");
        let slowest = a.slowest_device.expect("reads exist") as usize;
        assert!(slowest < 4);
        // The slowest device is the per-device p99.9 argmax.
        let slow_p999 = a.per_device[slowest].reads.p999.expect("device has reads");
        for d in &a.per_device {
            assert!(d.reads.p999.expect("device has reads") <= slow_p999);
        }
        // The array tail cannot beat the best device's tail.
        let best = a.best_read_p999.expect("reads exist");
        assert!(c.reads.p999.expect("reads exist") >= best);
        assert!(a.amplification_p999.expect("median exists") > 0.0);
    }
}

#[test]
fn gc_storm_on_one_device_is_attributed_in_the_array_tail() {
    // The acceptance case: a GC-stressed array run must report nonzero
    // per-device GC stalls, and the merged report's stall totals must be
    // exactly the sum of the per-device attributions.
    let mut base = base_cfg();
    base.chip.blocks_per_plane = 16;
    base.chip.pages_per_block = 12;
    let t = ssd_readretry::workloads::synth::gc_stress_trace(base.max_lpns(), 5_000);
    let devices = 4u32;
    let policy = PlacementPolicy::LpnHash;
    let routed = t.split_routed(devices, |i, r| {
        policy.route(i, r, devices, t.footprint_pages)
    });
    let mut set = DeviceSet::new(devices).expect("devices >= 1");
    let report = run_one_queued_array_from(
        &mut set,
        &base,
        Mechanism::PnAr2,
        OperatingPoint::new(2000.0, 6.0),
        &routed,
        t.footprint_pages,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        16,
        None,
        0,
    )
    .expect("valid array configuration");
    let stalls: u64 = (0..devices as usize)
        .map(|d| report.device_gc(d).stalls())
        .sum();
    assert!(stalls > 0, "GC-stress array run must record GC stalls");
    assert!(
        (0..devices as usize).any(|d| report.device_gc(d).stall_us > 0.0),
        "some device must absorb GC stall time"
    );
    assert!(report.slowest_device().is_some());
}

#[test]
fn device_count_mismatches_are_typed_errors() {
    // Trace-slice and image-fork width must both match the device set.
    let base = base_cfg();
    let t = trace();
    let policy = PlacementPolicy::RoundRobin;
    let routed = t.split_routed(2, |i, r| policy.route(i, r, 2, t.footprint_pages));
    let mut set = DeviceSet::new(3).expect("devices >= 1");
    let wrong_traces = run_one_queued_array_from(
        &mut set,
        &base,
        Mechanism::Baseline,
        OperatingPoint::new(2000.0, 6.0),
        &routed,
        t.footprint_pages,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        4,
        None,
        0,
    );
    assert!(
        wrong_traces.is_err(),
        "2 traces into 3 devices must be refused"
    );

    let bank = ImageBank::preconditioned(&base, [t.footprint_pages]).expect("valid configuration");
    let forks = bank
        .fork_for_array(t.footprint_pages, 2)
        .expect("bank covers");
    let routed3 = t.split_routed(3, |i, r| policy.route(i, r, 3, t.footprint_pages));
    let wrong_images = run_one_queued_array_from(
        &mut set,
        &base,
        Mechanism::Baseline,
        OperatingPoint::new(2000.0, 6.0),
        &routed3,
        t.footprint_pages,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        4,
        Some(forks.as_slice()),
        0,
    );
    assert!(
        wrong_images.is_err(),
        "a 2-slot fork into 3 devices must be refused"
    );
    assert!(bank.fork_for_array(t.footprint_pages, 0).is_err());
}

#[test]
fn array_quantiles_are_concatenated_samples_not_quantiles_of_quantiles() {
    // Under redundancy the array's latency classes must be computed from
    // the raw per-logical-request samples (each the wait-for-k order
    // statistic over its copies), never by aggregating per-device
    // quantiles: the counts expose the basis, and the wait-for-1 quantiles
    // sit *below* every per-device quantile — impossible for any
    // average/median of the per-device quantiles.
    let base = base_cfg();
    let t = trace();
    let array = ArraySetup::new(2, PlacementPolicy::RoundRobin)
        .with_redundancy(Redundancy::Replicate { r: 2 });
    let mut set = DeviceSet::new(2).expect("devices >= 1");
    let report = run_one_queued_redundant_from(
        &mut set,
        &base,
        Mechanism::PnAr2,
        OperatingPoint::new(2000.0, 6.0),
        &t,
        &array,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        8,
        None,
        0,
    )
    .expect("valid redundant configuration");
    let logical_reads = t.requests.iter().filter(|r| r.op == IoOp::Read).count() as u64;
    // The array read class counts logical requests; the per-device copy
    // populations are strictly larger (2x under full replication).
    assert_eq!(report.read_latency.count, logical_reads);
    let copy_total: u64 = report.devices.iter().map(|d| d.read_latency.count).sum();
    assert_eq!(copy_total, 2 * logical_reads);
    let per_device_p99: Vec<f64> = report
        .devices
        .iter()
        .map(|d| d.read_latency.p99.expect("copies exist"))
        .collect();
    let array_p99 = report.read_latency.p99.expect("reads exist");
    for &device_p99 in &per_device_p99 {
        assert!(
            array_p99 <= device_p99,
            "wait-for-1 p99 {array_p99} must not exceed device p99 {device_p99}"
        );
    }
    // amplification_p99 divides the *post-redundancy* array tail by the
    // best device tail, so hedged reads drive it to <= 1 here.
    let best_p99 = per_device_p99
        .iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .expect("reads exist");
    let amp = report.amplification_p99().expect("reads exist");
    assert_eq!(amp, array_p99 / best_p99);
    assert!(
        amp <= 1.0,
        "replication across both devices must not amplify the p99: {amp}"
    );
}

#[test]
fn warm_started_array_sweep_matches_the_cold_start() {
    // Forking one preconditioned image across all N devices may only change
    // wall-clock: the warm cells must equal the cold re-preconditioning
    // path bit for bit.
    let base = base_cfg();
    let traces = vec![trace()];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let array = ArraySetup::new(2, PlacementPolicy::HotCold);
    let point = OperatingPoint::new(2000.0, 6.0);
    let bank = ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages))
        .expect("valid configuration");
    let cold = run_qd_sweep_array(
        &base,
        &traces,
        point,
        &[8],
        &mechanisms,
        &setup,
        1,
        0,
        array,
    );
    for jobs in [1usize, 2] {
        let warm = run_qd_sweep_array_from(
            &base,
            &traces,
            point,
            &[8],
            &mechanisms,
            &setup,
            jobs,
            0,
            array,
            &bank,
        )
        .expect("bank covers the sweep");
        assert_eq!(
            cold, warm,
            "warm-started array sweep diverged at jobs={jobs}"
        );
    }
}
