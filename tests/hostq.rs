//! NVMe multi-queue front-end: arbitration fairness, starvation drain, and
//! determinism.
//!
//! * WRR with weights `[3, 1]` fetches admitted requests in an exact 3:1
//!   ratio while both queues are backlogged (arbiter level), and the skew
//!   surfaces in the per-queue latency distributions (device level);
//! * a starved low-weight queue still drains completely once the
//!   high-weight queue idles;
//! * multi-queue sweeps are bit-identical across `--jobs` and reruns.

use ssd_readretry::prelude::*;

fn fresh_reads(n: u64) -> Vec<HostRequest> {
    (0..n)
        .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i, 1))
        .collect()
}

fn run_queued(trace: &[HostRequest], queues: &HostQueueConfig) -> ssd_readretry::sim::SimReport {
    run_queued_at(trace, queues, 0.0, 0.0)
}

fn run_queued_at(
    trace: &[HostRequest],
    queues: &HostQueueConfig,
    pec: f64,
    months: f64,
) -> ssd_readretry::sim::SimReport {
    let cfg = SsdConfig::scaled_for_tests().with_condition(
        ssd_readretry::flash::calibration::OperatingCondition::new(pec, months, 30.0),
    );
    Ssd::new(cfg, Box::new(BaselineController::new()), 1_000)
        .expect("valid configuration")
        .run_with_queues(trace, queues)
}

#[test]
fn wrr_arbiter_admits_in_an_exact_3_to_1_ratio_while_backlogged() {
    let mut arb = Arbiter::new(ArbPolicy::WeightedRoundRobin, 1, vec![3, 1]);
    let mut counts = [0u64; 2];
    for _ in 0..4_000 {
        counts[arb.pick(|_| true).expect("both queues backlogged")] += 1;
    }
    assert_eq!(counts, [3_000, 1_000], "WRR [3,1] must fetch exactly 3:1");
    // Burst scales both sides of the ratio, preserving it.
    let mut arb = Arbiter::new(ArbPolicy::WeightedRoundRobin, 2, vec![3, 1]);
    let picks: Vec<usize> = (0..16).map(|_| arb.pick(|_| true).unwrap()).collect();
    assert_eq!(picks.iter().filter(|&&q| q == 0).count(), 12);
}

#[test]
fn wrr_weight_skew_surfaces_in_per_queue_tails() {
    // Both queues closed-loop over equal 120-request stripes, sharing an
    // 8-slot device window at an aged operating point (cold reads retry, so
    // service times are heterogeneous and completions spread out — on a
    // fresh SSD identical latencies complete in same-tick bursts that
    // alternate the freed slots 1:1 regardless of weights): while both are
    // backlogged the 3:1 arbitration gives queue 0 most of the window, so
    // queue 1's requests wait far longer in their submission queue.
    let trace = fresh_reads(240);
    let wrr = HostQueueConfig::uniform(2, ReplayMode::closed_loop(8))
        .with_arb(ArbPolicy::WeightedRoundRobin)
        .with_weights(&[3, 1])
        .with_window(8);
    let report = run_queued_at(&trace, &wrr, 2000.0, 6.0);
    assert_eq!(report.requests_completed, 240);
    assert_eq!(report.per_queue.len(), 2);
    // Favoritism protects the favored queue's *tail*: when admission
    // contention peaks, queue 0's credits win the freed slots and queue 1's
    // unlucky requests absorb the wait (medians stay close — the freed-slot
    // handoff serves both queues when the other's backlog is empty).
    let p95_fast = report.per_queue[0].reads.p95.expect("queue 0 has reads");
    let p95_slow = report.per_queue[1].reads.p95.expect("queue 1 has reads");
    assert!(
        p95_slow > 1.8 * p95_fast,
        "weight-1 queue's tail must stretch: q0 p95 {p95_fast} vs q1 p95 {p95_slow}"
    );
    // The aggregate classes still cover every request.
    assert_eq!(report.read_latency.count, 240);
    assert_eq!(
        report.per_queue.iter().map(|q| q.completed).sum::<u64>(),
        240
    );

    // Control: plain RR over the same topology treats the queues equally.
    let rr = HostQueueConfig::uniform(2, ReplayMode::closed_loop(8)).with_window(8);
    let fair = run_queued_at(&trace, &rr, 2000.0, 6.0);
    let p95_a = fair.per_queue[0].reads.p95.expect("reads");
    let p95_b = fair.per_queue[1].reads.p95.expect("reads");
    assert!(
        (p95_a - p95_b).abs() <= 0.35 * p95_a.max(p95_b),
        "RR queues must see comparable tails: {p95_a} vs {p95_b}"
    );
}

#[test]
fn starved_queue_drains_after_the_bursty_queue_idles() {
    // Queue 0 carries a heavy weight and three quarters of the trace; once
    // its stripe is exhausted the arbiter's rotation serves queue 1 alone,
    // so the starved queue must still drain completely (the simulator's
    // drain asserts would fail loudly otherwise).
    let trace = fresh_reads(200);
    let queues = HostQueueConfig::uniform(2, ReplayMode::closed_loop(16))
        .with_arb(ArbPolicy::WeightedRoundRobin)
        .with_weights(&[7, 1])
        .with_window(4);
    let report = run_queued(&trace, &queues);
    assert_eq!(report.requests_completed, 200);
    assert_eq!(report.per_queue[0].completed, 100);
    assert_eq!(report.per_queue[1].completed, 100);
    // Every queue-1 read completed with a real (positive) latency tail.
    let q1 = &report.per_queue[1].reads;
    assert_eq!(q1.count, 100);
    assert!(q1.p999.expect("drained queue has a tail") > 0.0);
}

#[test]
fn mixed_per_queue_replay_modes_share_one_device() {
    // Queue 0 replays open-loop at its trace timestamps while queue 1 keeps
    // a closed-loop window — a latency-probe + throughput-load pairing.
    let mut trace = Vec::new();
    for i in 0..120u64 {
        trace.push(HostRequest::new(
            SimTime::from_us(500 * i),
            IoOp::Read,
            i,
            1,
        ));
    }
    let queues = HostQueueConfig {
        queues: vec![
            QueueSpec::new(ReplayMode::OpenLoop),
            QueueSpec::new(ReplayMode::closed_loop(4)),
        ],
        arb: ArbPolicy::RoundRobin,
        burst: 1,
        window: None,
    };
    let report = run_queued(&trace, &queues);
    assert_eq!(report.requests_completed, 120);
    assert_eq!(report.per_queue[0].completed, 60);
    assert_eq!(report.per_queue[1].completed, 60);
}

#[test]
fn multi_queue_sweep_is_bit_identical_across_jobs_and_reruns() {
    let cfg = SsdConfig::scaled_for_tests();
    let traces = vec![
        MsrcWorkload::Mds1.synthesize(250, 3),
        YcsbWorkload::C.synthesize(250, 3),
    ];
    let point = OperatingPoint::new(2000.0, 6.0);
    let setup = QueueSetup {
        queues: 4,
        arb: ArbPolicy::WeightedRoundRobin,
        burst: 2,
        weights: Some(vec![4, 3, 2, 1]),
        window: None,
    };
    let serial = run_qd_sweep_queued(
        &cfg,
        &traces,
        point,
        &[4, 16],
        &[Mechanism::Baseline, Mechanism::PnAr2],
        &setup,
        1,
    );
    assert_eq!(serial.len(), 8);
    for jobs in [2, 4, 8] {
        let parallel = run_qd_sweep_queued(
            &cfg,
            &traces,
            point,
            &[4, 16],
            &[Mechanism::Baseline, Mechanism::PnAr2],
            &setup,
            jobs,
        );
        assert_eq!(serial, parallel, "--jobs {jobs} diverged from serial");
    }
    let rerun = run_qd_sweep_queued(
        &cfg,
        &traces,
        point,
        &[4, 16],
        &[Mechanism::Baseline, Mechanism::PnAr2],
        &setup,
        4,
    );
    assert_eq!(serial, rerun, "repeated parallel runs diverged");
    for c in &serial {
        assert_eq!(c.queues, 4);
        assert_eq!(c.per_queue_reads.len(), 4);
    }
    // The rate-sweep sibling holds the same invariant.
    let rate_serial = run_rate_sweep_queued(
        &cfg,
        &traces,
        point,
        &[1.0, 4.0],
        &[Mechanism::Baseline],
        &setup,
        1,
    );
    let rate_parallel = run_rate_sweep_queued(
        &cfg,
        &traces,
        point,
        &[1.0, 4.0],
        &[Mechanism::Baseline],
        &setup,
        4,
    );
    assert_eq!(rate_serial, rate_parallel);
}

#[test]
fn invalid_front_end_configurations_are_rejected() {
    let zero_window = HostQueueConfig::single(ReplayMode::OpenLoop).with_window(0);
    assert!(zero_window.validate().is_err());
    let err: ConfigError = zero_window.validate().unwrap_err();
    assert!(String::from(err).contains("window"));
    assert!(HostQueueConfig::uniform(3, ReplayMode::closed_loop(2))
        .with_arb(ArbPolicy::WeightedRoundRobin)
        .with_weights(&[3, 2, 1])
        .validate()
        .is_ok());
}
