//! Closed-loop queue-depth replay: correctness and determinism.
//!
//! * QD = 1 is the legacy serial device — per-request latencies must match a
//!   fully spaced-out open-loop replay of the same trace, request for
//!   request;
//! * read p99 must be monotone non-decreasing across a QD sweep on a fixed
//!   workload (more outstanding requests can only add contention);
//! * the multi-die closed-loop path must be bit-identical across `--jobs`
//!   settings and across repeated runs.

use ssd_readretry::prelude::*;

fn respaced(trace: &Trace, spacing_us: u64) -> Trace {
    let requests: Vec<HostRequest> = trace
        .requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            HostRequest::new(
                SimTime::from_us(i as u64 * spacing_us),
                r.op,
                r.lpn,
                r.len_pages,
            )
        })
        .collect();
    Trace::new(trace.name.clone(), requests, trace.footprint_pages)
}

#[test]
fn qd1_matches_legacy_serial_device_replay() {
    // With 10 ms between open-loop arrivals every request runs in complete
    // isolation (worst-case read ≈ 2.4 ms, erase 5 ms), which is exactly
    // what a closed-loop window of one outstanding request enforces — so
    // the two replays must produce identical per-request latency
    // distributions and flash-activity counters.
    let cfg = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(1000.0, 6.0);
    let trace = MsrcWorkload::Mds1.synthesize(400, 9);
    let spaced = respaced(&trace, 10_000);
    let open = run_one(&cfg, Mechanism::Baseline, point, &spaced, &rpt);
    let closed = run_one_with_mode(
        &cfg,
        Mechanism::Baseline,
        point,
        &trace,
        &rpt,
        ReplayMode::closed_loop(1),
    );
    assert_eq!(open.read_latency, closed.read_latency);
    assert_eq!(open.write_latency, closed.write_latency);
    assert_eq!(open.retried_read_latency, closed.retried_read_latency);
    assert_eq!(open.senses, closed.senses);
    assert_eq!(open.retry_steps, closed.retry_steps);
    assert_eq!(open.requests_completed, closed.requests_completed);
    assert!(
        (open.avg_response_us() - closed.avg_response_us()).abs() < 1e-9,
        "open {} vs closed {}",
        open.avg_response_us(),
        closed.avg_response_us()
    );
}

#[test]
fn read_p99_is_monotone_across_qd_sweep() {
    let cfg = SsdConfig::scaled_for_tests();
    let traces = vec![MsrcWorkload::Mds1.synthesize(800, 5)];
    let point = OperatingPoint::new(2000.0, 6.0);
    let cells = run_qd_sweep(&cfg, &traces, point, &[1, 4, 16], &[Mechanism::Baseline], 2);
    assert_eq!(cells.len(), 3);
    let p99s: Vec<f64> = cells
        .iter()
        .map(|c| c.reads.p99.expect("the workload has reads"))
        .collect();
    for w in p99s.windows(2) {
        assert!(
            w[1] >= w[0],
            "read p99 must not improve under load: {p99s:?}"
        );
    }
    // Throughput, by contrast, grows with depth (multi-die interleaving).
    assert!(cells[2].kiops > cells[0].kiops, "{cells:?}");
}

#[test]
fn multi_die_closed_loop_is_bit_identical_across_jobs_and_reruns() {
    let cfg = SsdConfig::scaled_for_tests();
    let traces = vec![
        MsrcWorkload::Mds1.synthesize(250, 3),
        YcsbWorkload::C.synthesize(250, 3),
    ];
    let point = OperatingPoint::new(2000.0, 6.0);
    let qds = [1, 4, 16];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let serial = run_qd_sweep(&cfg, &traces, point, &qds, &mechanisms, 1);
    assert_eq!(serial.len(), traces.len() * qds.len() * mechanisms.len());
    for jobs in [2, 4, 8] {
        let parallel = run_qd_sweep(&cfg, &traces, point, &qds, &mechanisms, jobs);
        assert_eq!(serial, parallel, "--jobs {jobs} diverged from serial");
    }
    let rerun = run_qd_sweep(&cfg, &traces, point, &qds, &mechanisms, 4);
    let rerun2 = run_qd_sweep(&cfg, &traces, point, &qds, &mechanisms, 4);
    assert_eq!(rerun, rerun2, "repeated parallel runs diverged");
}

#[test]
fn same_tick_completion_bursts_admit_backlog_in_trace_order() {
    // On a fresh SSD every read costs the same Eq. 2 latency, so a QD-8
    // window of 8 reads striped over 8 distinct dies completes as one
    // same-tick burst — and each burst admits the next 8 backlog requests
    // within that tick. Admission must follow (tick, trace index): each
    // completion pops the backlog front (FIFO = trace order), never the
    // completion-heap pop order of whichever die finished "first". The
    // replay must be bit-identical across reruns and `--jobs`, and QD = 1
    // on the same trace must still equal the fully spaced open-loop replay.
    let cfg = SsdConfig::scaled_for_tests();
    let rpt = ReadTimingParamTable::default();
    let point = OperatingPoint::new(0.0, 0.0);
    // 64 single-page reads, 8 waves of 8 distinct dies (consecutive LPNs
    // stripe across planes), all with arrival 0 → every wave is one
    // same-tick completion burst under closed loop.
    let requests: Vec<HostRequest> = (0..64)
        .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i, 1))
        .collect();
    let trace = Trace::new("burst", requests, 1_000);
    let mk = |qd| {
        run_one_with_mode(
            &cfg,
            Mechanism::Baseline,
            point,
            &trace,
            &rpt,
            ReplayMode::closed_loop(qd),
        )
    };
    let a = mk(8);
    let b = mk(8);
    assert_eq!(a, b, "same-tick bursts must replay bit-identically");
    assert_eq!(a.requests_completed, 64);
    // Trace-order admission keeps every wave's 8 reads on 8 distinct dies,
    // so waves stay fully parallel: the makespan is ~8 isolated-read
    // latencies, not serialized die contention.
    let serial = mk(1);
    assert!(
        a.makespan.as_us_f64() < 0.3 * serial.makespan.as_us_f64(),
        "QD-8 bursts must overlap: {} vs serial {}",
        a.makespan,
        serial.makespan
    );
    // The sweep over the bursty trace is job-count-invariant like any other.
    let cells_serial = run_qd_sweep(
        &cfg,
        std::slice::from_ref(&trace),
        point,
        &[1, 8],
        &[Mechanism::Baseline],
        1,
    );
    let cells_parallel = run_qd_sweep(
        &cfg,
        std::slice::from_ref(&trace),
        point,
        &[1, 8],
        &[Mechanism::Baseline],
        4,
    );
    assert_eq!(cells_serial, cells_parallel);
    // And QD = 1 ≡ the spaced-out serial device, request for request.
    let spaced = respaced(&trace, 10_000);
    let open = run_one(&cfg, Mechanism::Baseline, point, &spaced, &rpt);
    assert_eq!(open.read_latency, serial.read_latency);
    assert_eq!(open.senses, serial.senses);
}

#[test]
fn qd_sweep_covers_msrc_and_ycsb_with_full_distributions() {
    // The acceptance shape: QD ∈ {1, 4, 16} on an MSRC and a YCSB workload,
    // every cell reporting p50/p95/p99/p99.9 for reads.
    let cfg = SsdConfig::scaled_for_tests();
    let traces = vec![
        MsrcWorkload::Mds1.synthesize(300, 7),
        YcsbWorkload::C.synthesize(300, 7),
    ];
    let point = OperatingPoint::new(2000.0, 6.0);
    let cells = run_qd_sweep(&cfg, &traces, point, &[1, 4, 16], &[Mechanism::Baseline], 4);
    assert_eq!(cells.len(), 6);
    for c in &cells {
        assert!(c.reads.count > 0, "{} has reads", c.workload);
        for (name, q) in [
            ("p50", c.reads.p50),
            ("p95", c.reads.p95),
            ("p99", c.reads.p99),
            ("p99.9", c.reads.p999),
        ] {
            assert!(
                q.is_some(),
                "{} QD={} missing {name}",
                c.workload,
                c.queue_depth
            );
        }
        // Empty classes report no tail; non-empty ones report one. Never a
        // fabricated 0 µs quantile.
        for class in [&c.writes, &c.retried_reads] {
            assert_eq!(class.p99.is_some(), class.count > 0);
            if let Some(p99) = class.p99 {
                assert!(p99 > 0.0);
            }
        }
    }
}
