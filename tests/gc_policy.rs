//! GC-policy suite: the pluggable garbage-collection policies of
//! `rr_sim::gc`.
//!
//! Two contracts are pinned here:
//!
//! 1. **Default neutrality** — `GcPolicy::Greedy` (the default) is
//!    bit-identical to a config that never mentions the policy, across
//!    replay modes and the multi-queue front end, so the policy subsystem
//!    cannot perturb the repository's baseline outputs.
//! 2. **Policies bite** — on a write-heavy workload that keeps garbage
//!    collection running, `QueueShield` strictly flattens the shielded
//!    queue's read p99 at QD ≥ 16 versus the greedy control, `ReadPreempt`
//!    spends its per-job preemption budget, `WindowedTokens` defers job
//!    starts, and every GC-induced stall is attributed to the host queue
//!    that was waiting.

use ssd_readretry::prelude::*;
use ssd_readretry::sim::metrics::SimReport;

/// The GC-pressure geometry of the FTL/engine unit tests: few small blocks,
/// so a short write-heavy trace exhausts the free pool and GC runs
/// continuously.
fn gc_cfg(policy: GcPolicy) -> SsdConfig {
    let mut cfg = SsdConfig::scaled_for_tests()
        .with_seed(0x6C_9011)
        .with_gc_policy(policy);
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

/// The shared GC-stress generator (`rr_workloads::synth::gc_stress_trace`,
/// the same one `repro --gc-stress` runs): alternating reads over the whole
/// footprint and writes hammering a hot quarter of it. Striped over two
/// host queues, every read lands on queue 0 (the latency-critical reader)
/// and every write on queue 1 (the hammer).
fn write_heavy_trace(footprint: u64, n: usize) -> Vec<HostRequest> {
    ssd_readretry::workloads::synth::gc_stress_trace(footprint, n).requests
}

/// Two closed-loop queues at `qd` each, WRR 2:1 favoring the reader queue,
/// window = `qd` — the front end of the QD sweeps.
fn two_queue_front(qd: u32) -> HostQueueConfig {
    HostQueueConfig::uniform(2, ReplayMode::closed_loop(qd))
        .with_arb(ArbPolicy::WeightedRoundRobin)
        .with_weights(&[2, 1])
        .with_window(qd)
}

fn run_policy(policy: GcPolicy, qd: u32) -> SimReport {
    let cfg = gc_cfg(policy);
    let footprint = cfg.max_lpns();
    let trace = write_heavy_trace(footprint, 2_000);
    Ssd::new(cfg, Box::new(BaselineController::new()), footprint)
        .expect("valid configuration")
        .run_with_queues(&trace, &two_queue_front(qd))
}

#[test]
fn default_config_is_bit_identical_to_explicit_greedy() {
    // A config that never mentions the GC policy and one that sets
    // `GcPolicy::Greedy` explicitly must be indistinguishable, mode by mode.
    let implicit = {
        let mut cfg = SsdConfig::scaled_for_tests().with_seed(0x6C_9011);
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        cfg
    };
    assert_eq!(implicit.gc_policy, GcPolicy::Greedy);
    let explicit = gc_cfg(GcPolicy::Greedy);
    let footprint = implicit.max_lpns();
    let trace = write_heavy_trace(footprint, 1_200);
    for mode in [
        ReplayMode::OpenLoop,
        ReplayMode::open_loop_rate(4.0),
        ReplayMode::closed_loop(16),
    ] {
        let run = |cfg: &SsdConfig| {
            Ssd::new(cfg.clone(), Box::new(BaselineController::new()), footprint)
                .expect("valid configuration")
                .run_with(&trace, mode)
        };
        let a = run(&implicit);
        let b = run(&explicit);
        assert_eq!(a, b, "explicit Greedy diverged under {mode:?}");
        assert!(a.gc_collections > 0, "workload must exercise GC");
    }
}

#[test]
fn greedy_attributes_gc_stalls_to_the_waiting_queue() {
    let report = run_policy(GcPolicy::Greedy, 16);
    assert!(report.gc_collections > 0, "workload must exercise GC");
    assert_eq!(report.per_queue.len(), 2);
    let q0 = &report.per_queue[0].gc;
    // Queue 0 (all reads) absorbs GC interference: its reads enqueue behind
    // (or suspend) in-flight GC operations, and that shows up as attributed
    // stalls with real stall time.
    assert!(q0.stalls() > 0, "reader queue saw no GC stalls: {q0:?}");
    assert!(q0.stall_us > 0.0);
    // Greedy grants no policy-forced preemptions and defers nothing.
    assert_eq!(q0.preemptions, 0);
    assert_eq!(q0.deferrals, 0);
    assert_eq!(report.per_queue[1].gc.deferrals, 0);
}

#[test]
fn queue_shield_flattens_the_shielded_queues_p99_at_qd16() {
    // The ISSUE's acceptance scenario: under a write-heavy workload at
    // QD ≥ 16, shielding queue 0 must leave its read p99 strictly below the
    // unshielded (greedy) control's.
    let control = run_policy(GcPolicy::Greedy, 16);
    let shielded = run_policy(GcPolicy::QueueShield { queue: 0 }, 16);
    assert!(control.gc_collections > 0);
    assert!(
        shielded.gc_collections > 0,
        "the shield defers GC, it must not starve it"
    );
    assert_eq!(shielded.requests_completed, control.requests_completed);
    let control_p99 = control.per_queue[0].reads.p99.expect("queue 0 reads");
    let shielded_p99 = shielded.per_queue[0].reads.p99.expect("queue 0 reads");
    assert!(
        shielded_p99 < control_p99,
        "shielded q0 p99 {shielded_p99} must be strictly below the control's {control_p99}"
    );
    // The shield works by deferring GC starts on queue 0's behalf.
    assert!(
        shielded.per_queue[0].gc.deferrals > 0,
        "shield recorded no deferrals: {:?}",
        shielded.per_queue[0].gc
    );
}

#[test]
fn read_preempt_spends_its_per_job_budget_on_forced_suspensions() {
    let greedy = run_policy(GcPolicy::Greedy, 16);
    let preempt = run_policy(GcPolicy::ReadPreempt { budget: 4 }, 16);
    assert!(preempt.gc_collections > 0);
    assert_eq!(preempt.requests_completed, greedy.requests_completed);
    let q0 = &preempt.per_queue[0].gc;
    assert!(
        q0.preemptions > 0,
        "read-preempt recorded no forced preemptions: {q0:?}"
    );
    // Forced preemptions replace (a subset of) default-rule suspensions and
    // waits; they never appear under greedy.
    assert_eq!(greedy.per_queue[0].gc.preemptions, 0);
}

#[test]
fn windowed_tokens_defers_jobs_and_throttles_collections() {
    let greedy = run_policy(GcPolicy::Greedy, 16);
    let throttled = run_policy(
        GcPolicy::WindowedTokens {
            tokens: 1,
            window_us: 10_000,
        },
        16,
    );
    assert_eq!(throttled.requests_completed, greedy.requests_completed);
    assert!(
        throttled.gc_collections > 0,
        "critical planes still collect"
    );
    assert!(
        throttled.gc_collections <= greedy.gc_collections,
        "a 1-token/10ms bucket cannot collect more than greedy \
         ({} vs {})",
        throttled.gc_collections,
        greedy.gc_collections
    );
    let deferrals: u64 = throttled.per_queue.iter().map(|q| q.gc.deferrals).sum();
    assert!(deferrals > 0, "dry token bucket recorded no deferrals");
}

#[test]
fn policies_are_deterministic_across_reruns() {
    for policy in [
        GcPolicy::Greedy,
        GcPolicy::ReadPreempt { budget: 2 },
        GcPolicy::WindowedTokens {
            tokens: 2,
            window_us: 5_000,
        },
        GcPolicy::QueueShield { queue: 0 },
    ] {
        let a = run_policy(policy, 8);
        let b = run_policy(policy, 8);
        assert_eq!(a, b, "{policy:?} is not deterministic");
    }
}

#[test]
fn shield_of_an_out_of_range_queue_behaves_like_greedy() {
    // A shield queue the front end does not have never activates: the run
    // must be bit-identical to greedy (guard for single-queue replays that
    // keep a stale shield index around).
    let greedy = run_policy(GcPolicy::Greedy, 8);
    let inert = run_policy(GcPolicy::QueueShield { queue: 9 }, 8);
    assert_eq!(
        SimReport {
            per_queue: Vec::new(),
            ..inert.clone()
        },
        SimReport {
            per_queue: Vec::new(),
            ..greedy.clone()
        },
        "an inert shield changed simulation behavior"
    );
    // Attribution is also untouched: no deferrals anywhere.
    assert!(inert.per_queue.iter().all(|q| q.gc.deferrals == 0));
}

#[test]
fn qd_sweep_carries_per_queue_gc_attribution_and_stays_parallel_safe() {
    // End-to-end through the sweep runner: per-queue GC stalls ride the
    // cells, and the sweep stays bit-identical across worker counts.
    let base = gc_cfg(GcPolicy::QueueShield { queue: 0 });
    let footprint = base.max_lpns();
    let trace = Trace::new("gc_heavy", write_heavy_trace(footprint, 2_500), footprint);
    let setup = QueueSetup {
        queues: 2,
        arb: ArbPolicy::WeightedRoundRobin,
        burst: 1,
        weights: Some(vec![2, 1]),
        window: None,
    };
    let point = OperatingPoint::new(0.0, 0.0);
    let serial = run_qd_sweep_queued(
        &base,
        std::slice::from_ref(&trace),
        point,
        &[4, 16],
        &[Mechanism::Baseline],
        &setup,
        1,
    );
    let parallel = run_qd_sweep_queued(
        &base,
        std::slice::from_ref(&trace),
        point,
        &[4, 16],
        &[Mechanism::Baseline],
        &setup,
        4,
    );
    assert_eq!(serial, parallel, "GC-policy sweep diverged across jobs");
    for cell in &serial {
        assert_eq!(cell.per_queue_gc.len(), 2);
        let deferrals: u64 = cell.per_queue_gc.iter().map(|g| g.deferrals).sum();
        assert!(
            deferrals > 0,
            "QD={} cell recorded no shield deferrals",
            cell.queue_depth
        );
    }
}
