//! End-to-end integration: workloads → SSD simulator → mechanism reports,
//! checked against the paper's latency equations and orderings.

use ssd_readretry::prelude::*;

fn base_cfg() -> SsdConfig {
    SsdConfig::scaled_for_tests()
}

fn single_read_trace() -> Trace {
    Trace::new(
        "one-read",
        vec![HostRequest::new(SimTime::ZERO, IoOp::Read, 1234, 1)],
        10_000,
    )
}

/// Ground truth for one page: its required retry steps and tR, derived the
/// same way the simulator derives them.
fn oracle(cfg: &SsdConfig, point: OperatingPoint, lpn: u64) -> (u32, f64, f64) {
    use ssd_readretry::flash::calibration::OperatingCondition;
    use ssd_readretry::flash::error_model::{ErrorModel, PageId};
    use ssd_readretry::sim::ftl::Ftl;
    let mut ftl = Ftl::new(cfg, 10_000).unwrap();
    ftl.precondition();
    let loc = ftl.locate(ftl.translate(lpn).unwrap());
    let model = ErrorModel::new(cfg.seed);
    let cond = OperatingCondition::new(point.pec, point.retention_months, 30.0);
    let n_rr = model.required_step_index(PageId::new(loc.block_global, loc.page_in_block), cond);
    let kind = cfg.chip.page_kind(loc.page_in_block);
    let t_r = cfg.timings.sense.t_r(kind).as_us_f64();
    let rpt = ReadTimingParamTable::default();
    let rho = rpt.rho(cond);
    (n_rr, t_r, rho)
}

#[test]
fn isolated_read_latencies_match_eq2_through_eq5() {
    let cfg = base_cfg();
    let point = OperatingPoint::new(2000.0, 12.0);
    let trace = single_read_trace();
    let rpt = ReadTimingParamTable::default();
    let (n_rr, t_r, rho) = oracle(&cfg, point, 1234);
    assert!(n_rr > 8, "the test page must need deep retry, got {n_rr}");
    let n = n_rr as f64;
    let (t_dma, t_ecc, t_set) = (16.0, 20.0, 1.0);

    // Eq. 2 + Eq. 3: Baseline = (N+1)(tR + tDMA + tECC).
    let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt);
    let expect = (n + 1.0) * (t_r + t_dma + t_ecc);
    assert!(
        (baseline.avg_response_us() - expect).abs() < 1.0,
        "baseline {} vs Eq.3 {expect}",
        baseline.avg_response_us()
    );

    // Eq. 4: PR2 = (N+1)·tR + tDMA + tECC (pipelined; transfers hidden).
    let pr2 = run_one(&cfg, Mechanism::Pr2, point, &trace, &rpt);
    let expect = (n + 1.0) * t_r + t_dma + t_ecc;
    assert!(
        (pr2.avg_response_us() - expect).abs() < 1.0,
        "PR2 {} vs Eq.4 {expect}",
        pr2.avg_response_us()
    );
    assert_eq!(pr2.resets, 1, "one speculative step must be RESET");

    // AR2 (sequential): tR+tDMA+tECC + tSET + N·(ρ·tR + tDMA + tECC).
    let ar2 = run_one(&cfg, Mechanism::Ar2, point, &trace, &rpt);
    let expect = (t_r + t_dma + t_ecc) + t_set + n * (rho * t_r + t_dma + t_ecc);
    assert!(
        (ar2.avg_response_us() - expect).abs() < 2.0,
        "AR2 {} vs expectation {expect}",
        ar2.avg_response_us()
    );
    assert!(ar2.set_features >= 2, "install + rollback SET FEATURE");

    // Eq. 5: PnAR2 = tR+tDMA+tECC + tSET + ρ·N·tR + tDMA + tECC.
    let pnar2 = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    let expect = (t_r + t_dma + t_ecc) + t_set + rho * n * t_r + t_dma + t_ecc;
    assert!(
        (pnar2.avg_response_us() - expect).abs() < 2.0,
        "PnAR2 {} vs Eq.5 {expect}",
        pnar2.avg_response_us()
    );

    // NoRR: tR + tDMA + tECC.
    let norr = run_one(&cfg, Mechanism::NoRR, point, &trace, &rpt);
    let expect = t_r + t_dma + t_ecc;
    assert!(
        (norr.avg_response_us() - expect).abs() < 1.0,
        "NoRR {} vs Eq.2 {expect}",
        norr.avg_response_us()
    );
}

#[test]
fn mechanism_ordering_under_load() {
    // With queueing and mixed read/write traffic, the Fig. 14 ordering must
    // still hold: NoRR < PnAR2 < min(PR2, AR2) ≤ max(PR2, AR2) < Baseline.
    let cfg = base_cfg();
    let point = OperatingPoint::new(2000.0, 6.0);
    let trace = MsrcWorkload::Usr1.synthesize(3_000, 5);
    let rpt = ReadTimingParamTable::default();
    let rt = |m| run_one(&cfg, m, point, &trace, &rpt).avg_response_us();
    let baseline = rt(Mechanism::Baseline);
    let pr2 = rt(Mechanism::Pr2);
    let ar2 = rt(Mechanism::Ar2);
    let pnar2 = rt(Mechanism::PnAr2);
    let norr = rt(Mechanism::NoRR);
    assert!(pr2 < baseline);
    assert!(ar2 < baseline);
    assert!(pnar2 < pr2 && pnar2 < ar2, "combining both must win");
    assert!(norr < pnar2, "the ideal bound is unbeatable");
}

#[test]
fn fresh_ssd_makes_mechanisms_nearly_equal() {
    // With no P/E cycling and no retention, reads need no retry: all
    // mechanisms collapse to (nearly) the same response time. PR2's
    // speculative sensing costs it a small RESET overhead per read.
    let cfg = base_cfg();
    let point = OperatingPoint::new(0.0, 0.0);
    let trace = MsrcWorkload::Mds1.synthesize(1_500, 3);
    let rpt = ReadTimingParamTable::default();
    let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt);
    let pnar2 = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    assert_eq!(baseline.avg_retry_steps(), 0.0);
    let ratio = pnar2.avg_response_us() / baseline.avg_response_us();
    assert!(
        (0.95..=1.10).contains(&ratio),
        "fresh-SSD ratio should be ≈ 1, got {ratio}"
    );
}

#[test]
fn pso_composition_beats_pso_alone() {
    // §7.3: PR2/AR2 complement retry-count reduction.
    let cfg = base_cfg();
    let point = OperatingPoint::new(2000.0, 12.0);
    let trace = YcsbWorkload::C.synthesize(2_500, 9);
    let rpt = ReadTimingParamTable::default();
    let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt);
    let pso = run_one(&cfg, Mechanism::Pso, point, &trace, &rpt);
    let combo = run_one(&cfg, Mechanism::PsoPnAr2, point, &trace, &rpt);
    assert!(pso.avg_response_us() < 0.6 * baseline.avg_response_us());
    assert!(combo.avg_response_us() < 0.9 * pso.avg_response_us());
    // PSO cannot go below its guard: ~3+ steps per cold read.
    assert!(pso.avg_retry_steps() >= 3.0);
}

#[test]
fn reports_are_deterministic() {
    let cfg = base_cfg();
    let point = OperatingPoint::new(1000.0, 6.0);
    let trace = YcsbWorkload::A.synthesize(1_000, 4);
    let rpt = ReadTimingParamTable::default();
    let a = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    let b = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt);
    assert_eq!(a.avg_response_us(), b.avg_response_us());
    assert_eq!(a.senses, b.senses);
    assert_eq!(a.resets, b.resets);
    assert_eq!(a.set_features, b.set_features);
}

#[test]
fn no_read_failures_under_normal_operation() {
    // §6.2: without injected outliers, reduced-tPRE retry never exhausts the
    // table.
    let cfg = base_cfg();
    let rpt = ReadTimingParamTable::default();
    for point in [
        OperatingPoint::new(1000.0, 6.0),
        OperatingPoint::new(2000.0, 12.0),
    ] {
        for m in [Mechanism::Baseline, Mechanism::PnAr2, Mechanism::PsoPnAr2] {
            let trace = MsrcWorkload::Prn1.synthesize(1_000, 8);
            let r = run_one(&cfg, m, point, &trace, &rpt);
            assert_eq!(r.read_failures, 0, "{} at {point:?}", m.name());
        }
    }
}
