//! Redundancy-layer suite: the `Redundancy`/`RedundantRouting` stack must
//! (1) reduce to the plain array path bit-for-bit under `none`, (2) complete
//! replicated reads at the first copy and EC reads at the k-th (the
//! wait-for-k order statistic), (3) demonstrably cut the GC-stress array
//! read tail with r=2 replication, and (4) stay bit-identical across
//! reruns, shard counts, and sweep worker counts.

use ssd_readretry::prelude::*;

fn base_cfg() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0xA88A_71E5)
}

fn trace() -> Trace {
    MsrcWorkload::Mds1.synthesize(400, 17)
}

/// Runs one closed-loop redundant array replay through the per-query runner.
#[allow(clippy::too_many_arguments)]
fn redundant_run(
    base: &SsdConfig,
    t: &Trace,
    devices: u32,
    policy: PlacementPolicy,
    redundancy: Redundancy,
    failure: Option<FailurePlan>,
    mechanism: Mechanism,
    qd: u32,
    shards: u32,
) -> ArrayReport {
    let array = ArraySetup::new(devices, policy)
        .with_redundancy(redundancy)
        .with_failure(failure);
    let mut set = DeviceSet::new(devices).expect("devices >= 1");
    run_one_queued_redundant_from(
        &mut set,
        base,
        mechanism,
        OperatingPoint::new(2000.0, 6.0),
        t,
        &array,
        &ReadTimingParamTable::default(),
        &QueueSetup::single(),
        qd,
        None,
        shards,
    )
    .expect("valid redundant configuration")
}

#[test]
fn none_redundancy_matches_the_plain_array_across_mechanisms_and_qd() {
    // `--redundancy none` must take the literal plain-array code path: the
    // whole merged report — float-accumulation order included — equals the
    // placement-only runner bit for bit.
    let base = base_cfg();
    let t = trace();
    let policy = PlacementPolicy::LpnHash;
    let routed = t.split_routed(3, |i, r| policy.route(i, r, 3, t.footprint_pages));
    for mechanism in [Mechanism::Baseline, Mechanism::PnAr2] {
        for qd in [1u32, 8] {
            let via_redundant = redundant_run(
                &base,
                &t,
                3,
                policy,
                Redundancy::None,
                None,
                mechanism,
                qd,
                0,
            );
            let mut set = DeviceSet::new(3).expect("devices >= 1");
            let plain = run_one_queued_array_from(
                &mut set,
                &base,
                mechanism,
                OperatingPoint::new(2000.0, 6.0),
                &routed,
                t.footprint_pages,
                &ReadTimingParamTable::default(),
                &QueueSetup::single(),
                qd,
                None,
                0,
            )
            .expect("valid array configuration");
            assert_eq!(
                via_redundant,
                plain,
                "redundancy=none diverged from the plain array for {} at qd={qd}",
                mechanism.name()
            );
            assert!(via_redundant.redundancy.is_none());
        }
    }
}

#[test]
fn replicated_reads_complete_at_the_first_copy() {
    // devices=2 + replicate:2 puts one copy of every read on *each* device,
    // so each logical read latency is the min of its two copies: every
    // wait-for-k quantile is dominated by the same quantile of either
    // device's copy population, and the array read class *is* the
    // wait-for-k class.
    let base = base_cfg();
    let t = trace();
    let report = redundant_run(
        &base,
        &t,
        2,
        PlacementPolicy::RoundRobin,
        Redundancy::Replicate { r: 2 },
        None,
        Mechanism::PnAr2,
        8,
        0,
    );
    let stats = report.redundancy.as_ref().expect("redundant run has stats");
    assert_eq!(stats.scheme, "replicate:2");
    let logical_reads = t.requests.iter().filter(|r| r.op == IoOp::Read).count() as u64;
    let logical_writes = t.requests.len() as u64 - logical_reads;
    // One logical completion per request, not per copy.
    assert_eq!(report.requests_completed, t.requests.len() as u64);
    assert_eq!(stats.wait_for_k.count, logical_reads);
    assert_eq!(report.read_latency, stats.wait_for_k);
    // Full fan-out: every device serves a copy of every request.
    assert_eq!(stats.fanout_reads, vec![logical_reads, logical_reads]);
    assert_eq!(stats.fanout_writes, vec![logical_writes, logical_writes]);
    assert!(stats.rebuild_reads.iter().all(|&n| n == 0));
    assert_eq!(stats.failed_device, None);
    // min(a_i, b_i) <= a_i pointwise => every empirical quantile of the
    // completions is <= the same quantile of each device's copies.
    for d in &report.devices {
        for (got, copy) in [
            (stats.wait_for_k.p50, d.read_latency.p50),
            (stats.wait_for_k.p99, d.read_latency.p99),
            (stats.wait_for_k.p999, d.read_latency.p999),
        ] {
            assert!(
                got.expect("reads exist") <= copy.expect("copies exist"),
                "first-copy completion must dominate the copy population"
            );
        }
    }
    // Writes wait for both copies: the array write tail cannot beat either
    // device's write tail.
    for d in &report.devices {
        assert!(
            report.write_latency.p99.expect("writes exist")
                >= d.write_latency.p99.expect("writes exist"),
            "a write completes only when its last copy does"
        );
    }
}

#[test]
fn ec_reads_complete_at_the_kth_copy() {
    // ec:2:4 fans each read to k=2 stripe members and completes at the
    // *last* of them; writes update the whole n=4 span.
    let base = base_cfg();
    let t = trace();
    let report = redundant_run(
        &base,
        &t,
        4,
        PlacementPolicy::RoundRobin,
        Redundancy::Ec { k: 2, n: 4 },
        None,
        Mechanism::PnAr2,
        8,
        0,
    );
    let stats = report.redundancy.as_ref().expect("redundant run has stats");
    assert_eq!(stats.scheme, "ec:2:4");
    let logical_reads = t.requests.iter().filter(|r| r.op == IoOp::Read).count() as u64;
    let logical_writes = t.requests.len() as u64 - logical_reads;
    assert_eq!(report.requests_completed, t.requests.len() as u64);
    assert_eq!(stats.wait_for_k.count, logical_reads);
    assert_eq!(stats.fanout_reads.iter().sum::<u64>(), 2 * logical_reads);
    assert_eq!(stats.fanout_writes.iter().sum::<u64>(), 4 * logical_writes);
    // max(a_i, b_i) >= both copies => the completion distribution dominates
    // the pooled copy population, whose quantiles in turn are at least the
    // *fastest* device's: the k-th order statistic cannot beat the best
    // single device.
    let best_copy_p50 = report
        .devices
        .iter()
        .filter_map(|d| d.read_latency.p50)
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .expect("reads exist");
    assert!(
        stats.wait_for_k.p50.expect("reads exist") >= best_copy_p50,
        "k-th-response completion cannot beat the fastest copy population"
    );
}

#[test]
fn replication_cuts_the_gc_stress_array_read_tail() {
    // The acceptance case: on the GC-stress workload one device's GC storm
    // dominates the array read tail; hedging every read across 2 replicas
    // completes at the first copy, so the post-redundancy array p99 must
    // beat both the unredundant array p99 and the median single-device p99.
    let mut base = base_cfg();
    base.chip.blocks_per_plane = 16;
    base.chip.pages_per_block = 12;
    let t = ssd_readretry::workloads::synth::gc_stress_trace(base.max_lpns(), 5_000);
    let policy = PlacementPolicy::LpnHash;
    let none = redundant_run(
        &base,
        &t,
        4,
        policy,
        Redundancy::None,
        None,
        Mechanism::PnAr2,
        16,
        0,
    );
    let rep = redundant_run(
        &base,
        &t,
        4,
        policy,
        Redundancy::Replicate { r: 2 },
        None,
        Mechanism::PnAr2,
        16,
        0,
    );
    let stats = rep.redundancy.as_ref().expect("redundant run has stats");
    let rep_p99 = stats.wait_for_k.p99.expect("reads exist");
    let none_array_p99 = none.read_latency.p99.expect("reads exist");
    let none_median_p99 = none.median_device_read_p99().expect("reads exist");
    assert!(
        rep_p99 <= none_array_p99,
        "r=2 replication must cut the array read p99: {rep_p99} vs {none_array_p99}"
    );
    assert!(
        rep_p99 <= none_median_p99,
        "the order-statistic p99 must beat the median single-device p99: \
         {rep_p99} vs {none_median_p99}"
    );
    // The rescue counter attributes the win: some reads escaped the slowest
    // device's GC window via their other copy.
    assert!(
        stats.rescued_reads > 0,
        "GC-stress hedges must rescue reads"
    );
    assert!(stats.rescued_saved_us > 0.0);
}

#[test]
fn redundant_runs_are_bit_identical_across_reruns_and_shards() {
    let base = base_cfg();
    let t = trace();
    let run = |shards: u32| {
        redundant_run(
            &base,
            &t,
            4,
            PlacementPolicy::LpnHash,
            Redundancy::Replicate { r: 2 },
            Some(FailurePlan {
                device: 1,
                at: t.requests[t.requests.len() / 2].arrival,
            }),
            Mechanism::PnAr2,
            8,
            shards,
        )
    };
    let unsharded = run(0);
    assert_eq!(unsharded, run(0), "unsharded redundant rerun diverged");
    let reference = run(1);
    for shards in [1u32, 2, 4] {
        assert_eq!(
            reference,
            run(shards),
            "sharded redundant run diverged at shards={shards}"
        );
    }
}

#[test]
fn redundant_sweep_is_bit_identical_across_jobs() {
    let base = base_cfg();
    let traces = vec![trace()];
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let setup = QueueSetup::single();
    let array = ArraySetup::new(4, PlacementPolicy::RoundRobin)
        .with_redundancy(Redundancy::Replicate { r: 2 });
    let reference = run_qd_sweep_array(
        &base,
        &traces,
        OperatingPoint::new(2000.0, 6.0),
        &[1, 8],
        &mechanisms,
        &setup,
        1,
        0,
        array,
    );
    for jobs in [1usize, 2] {
        let rerun = run_qd_sweep_array(
            &base,
            &traces,
            OperatingPoint::new(2000.0, 6.0),
            &[1, 8],
            &mechanisms,
            &setup,
            jobs,
            0,
            array,
        );
        assert_eq!(reference, rerun, "redundant sweep diverged at jobs={jobs}");
    }
    for c in &reference {
        let a = c.array.as_ref().expect("array cells carry array stats");
        let r = a.redundancy.as_ref().expect("redundant cells carry stats");
        assert_eq!(r.scheme, "replicate:2");
        // The cell's read class is the logical (wait-for-k) population.
        assert_eq!(c.reads.count, r.wait_for_k.count);
    }
}
