//! Device-image snapshot suite: replaying from a warm-start image must be
//! bit-identical to a cold preconditioned run — across mechanisms, replay
//! modes, reused arenas, and a serialize/deserialize round trip — and the
//! on-disk codec must reject damaged bytes with a typed error, never a
//! panic or a silently wrong device.

use proptest::prelude::*;
use ssd_readretry::prelude::*;
use ssd_readretry::sim::replay::ReplayMode as Mode;
use ssd_readretry::util::codec::{CodecError, Encoder};

fn base_cfg() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0x51AB_5EED)
}

/// The aged operating condition the warm-start runs replay under.
fn aged(cfg: SsdConfig) -> SsdConfig {
    cfg.with_condition(OperatingCondition::new(2000.0, 6.0, 30.0))
}

/// A small GC-heavy geometry, so image round trips cover non-trivial FTL
/// state (short free lists, open blocks mid-plane) cheaply.
fn small_cfg() -> SsdConfig {
    let mut cfg = base_cfg();
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

#[test]
fn capture_image_then_replay_matches_the_straight_run() {
    // `Ssd::capture_image` at quiescence, restored through the pooled
    // warm-start path, must replay exactly like the device it was captured
    // from.
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Mds1.synthesize(250, 7);
    let cfg = aged(base_cfg());
    let ssd = Ssd::new(
        cfg.clone(),
        Mechanism::PnAr2.make_controller(&rpt),
        trace.footprint_pages,
    )
    .expect("valid configuration");
    let image = ssd.capture_image();
    let straight = ssd.run_with(&trace.requests, Mode::closed_loop(8));
    let mut arena = SimArena::new();
    let warm = Ssd::run_pooled_queued_from(
        &mut arena,
        cfg,
        Mechanism::PnAr2.make_controller(&rpt),
        trace.footprint_pages,
        &trace.requests,
        &HostQueueConfig::single(Mode::closed_loop(8)),
        Some(&image),
    )
    .expect("captured image matches its own device");
    assert_eq!(straight, warm, "captured image diverged from its device");
}

#[test]
fn image_restore_into_a_reused_arena_matches_fresh_cold_runs() {
    // One arena serving every warm-started cell back to back — different
    // traces, footprints, mechanisms, and replay modes — must report
    // exactly what a fresh cold-preconditioned simulator reports per cell.
    let rpt = ReadTimingParamTable::default();
    let mut arena = SimArena::new();
    let traces = [
        MsrcWorkload::Mds1.synthesize(250, 7),
        YcsbWorkload::C.synthesize(200, 7),
    ];
    for trace in &traces {
        let cfg = aged(base_cfg());
        let image =
            DeviceImage::preconditioned(&cfg, trace.footprint_pages).expect("valid configuration");
        for mechanism in [Mechanism::Baseline, Mechanism::PnAr2] {
            for mode in [Mode::OpenLoop, Mode::closed_loop(8)] {
                let warm = Ssd::run_pooled_queued_from(
                    &mut arena,
                    cfg.clone(),
                    mechanism.make_controller(&rpt),
                    trace.footprint_pages,
                    &trace.requests,
                    &HostQueueConfig::single(mode),
                    Some(&image),
                )
                .expect("image matches config");
                let fresh = Ssd::new(
                    cfg.clone(),
                    mechanism.make_controller(&rpt),
                    trace.footprint_pages,
                )
                .expect("valid configuration")
                .run_with(&trace.requests, mode);
                assert_eq!(
                    warm,
                    fresh,
                    "warm restore into the reused arena diverged: {} on {} under {:?}",
                    mechanism.name(),
                    trace.name,
                    mode
                );
            }
        }
    }
}

#[test]
fn bank_byte_round_trip_preserves_replay() {
    // An image that went through the full binary codec must drive the same
    // replay as the in-memory original.
    let rpt = ReadTimingParamTable::default();
    let trace = MsrcWorkload::Mds1.synthesize(200, 9);
    let cfg = aged(base_cfg());
    let bank = ImageBank::preconditioned(&cfg, [trace.footprint_pages]).expect("valid config");
    let decoded = ImageBank::from_bytes(&bank.to_bytes()).expect("round trip");
    let run = |image: &DeviceImage| {
        let mut arena = SimArena::new();
        Ssd::run_pooled_queued_from(
            &mut arena,
            cfg.clone(),
            Mechanism::PnAr2.make_controller(&rpt),
            trace.footprint_pages,
            &trace.requests,
            &HostQueueConfig::single(Mode::closed_loop(4)),
            Some(image),
        )
        .expect("image matches config")
    };
    let original = run(bank.get(trace.footprint_pages).expect("image in bank"));
    let reloaded = run(decoded.get(trace.footprint_pages).expect("image in bank"));
    assert_eq!(original, reloaded, "codec round trip changed the replay");
}

#[test]
fn serve_query_unit_matches_the_sweep_cell() {
    // `run_one_queued_from` — the per-query unit behind `repro serve` —
    // must answer exactly what the full warm-started sweep reports for the
    // same (workload, mechanism, queue-depth) cell.
    let base = base_cfg();
    let trace = MsrcWorkload::Mds1.synthesize(250, 7);
    let traces = vec![trace.clone()];
    let point = OperatingPoint::new(2000.0, 6.0);
    let setup = QueueSetup::single();
    let rpt = ReadTimingParamTable::default();
    let bank = ImageBank::preconditioned(&base, [trace.footprint_pages]).expect("valid config");
    let cells = run_qd_sweep_queued_from(
        &base,
        &traces,
        point,
        &[8],
        &[Mechanism::PnAr2],
        &setup,
        1,
        &bank,
    )
    .expect("bank covers the sweep");
    let mut arena = SimArena::new();
    let report = run_one_queued_from(
        &mut arena,
        &base,
        Mechanism::PnAr2,
        point,
        &trace,
        &rpt,
        &setup,
        8,
        bank.get(trace.footprint_pages),
    );
    assert_eq!(cells.len(), 1);
    assert_eq!(cells[0].reads, report.read_latency);
    assert_eq!(cells[0].avg_response_us, report.avg_response_us());
    assert_eq!(cells[0].events, report.events_processed);
}

#[test]
fn sharded_warm_start_from_image_matches_the_cold_sharded_run() {
    // The warm-start contract extends to the channel-sharded engine: a
    // `--from-image` restore replayed with two workers must be bit-identical
    // to the cold in-process preconditioning path on one worker — across
    // mechanisms and on the GC-heavy geometry, so the image covers
    // non-trivial FTL state.
    let rpt = ReadTimingParamTable::default();
    let cfg = aged(small_cfg());
    let footprint = cfg.max_lpns();
    let trace = ssd_readretry::workloads::synth::gc_stress_trace(footprint, 1_500);
    let image = DeviceImage::preconditioned(&cfg, footprint).expect("valid configuration");
    let front = HostQueueConfig::single(Mode::closed_loop(8));
    for mechanism in [Mechanism::Baseline, Mechanism::PnAr2] {
        let run = |image: Option<&DeviceImage>, workers: usize| {
            let mut arena = ShardArena::new();
            run_sharded_queued_from(
                &mut arena,
                cfg.clone(),
                &|| mechanism.make_controller(&rpt),
                footprint,
                &trace.requests,
                &front,
                image,
                workers,
            )
            .expect("image matches config")
        };
        let cold = run(None, 1);
        let warm = run(Some(&image), 2);
        assert_eq!(
            cold,
            warm,
            "sharded warm start diverged from the cold run: {}",
            mechanism.name()
        );
    }
}

#[test]
fn checked_in_v1_image_keeps_loading() {
    // The backward-compat half of the version policy: this tiny bank was
    // written by the first format version and is checked in; every future
    // reader must keep accepting it (bump `VERSION`, add decode arms —
    // never break v1). If this test fails, the codec change is a silent
    // break for every image users have on disk.
    let bytes = include_bytes!("data/v1_tiny.rrimg");
    let bank = ImageBank::from_bytes(bytes).expect("v1 images must keep loading");
    assert_eq!(bank.len(), 1);
    assert_eq!(bank.images()[0].lpn_count(), 100);
    // The decoded image still drives a replay on a matching config.
    let cfg = small_cfg();
    let image = bank.get(100).expect("footprint present");
    image
        .validate_for(&cfg, 100)
        .expect("v1 image validates against the geometry it was captured under");
}

#[test]
fn future_version_banks_are_rejected_with_the_typed_error() {
    // A valid payload re-framed under a future format version must be
    // refused up front (the forward-compat half of the version policy).
    let bank = ImageBank::preconditioned(&small_cfg(), [100]).expect("valid config");
    let mut enc = Encoder::new(ImageBank::MAGIC, ImageBank::VERSION + 1);
    enc.put_u64(1);
    bank.images()[0].encode(&mut enc);
    assert!(matches!(
        ImageBank::from_bytes(&enc.finish()),
        Err(CodecError::UnsupportedVersion { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flipping any byte anywhere in a serialized bank — magic, version,
    /// payload, or checksum — is rejected with a typed error: the image
    /// loader must never panic on, or silently accept, damaged state.
    #[test]
    fn corrupt_bank_bytes_are_rejected_cleanly(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bank = ImageBank::preconditioned(&small_cfg(), [small_cfg().max_lpns()])
            .expect("valid config");
        let mut bytes = bank.to_bytes();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(ImageBank::from_bytes(&bytes).is_err());
    }

    /// Any strict prefix of a serialized bank is rejected cleanly — a
    /// truncated download or interrupted write must not load.
    #[test]
    fn truncated_bank_bytes_are_rejected_cleanly(keep_frac in 0.0f64..1.0) {
        let bank = ImageBank::preconditioned(&small_cfg(), [small_cfg().max_lpns()])
            .expect("valid config");
        let bytes = bank.to_bytes();
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(ImageBank::from_bytes(&bytes[..keep]).is_err());
    }
}
