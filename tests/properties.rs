//! Cross-crate property-based tests (proptest): invariants that must hold for
//! *arbitrary* workloads, conditions, and error patterns — not just the
//! hand-picked cases of the unit tests.

use proptest::prelude::*;
use ssd_readretry::ecc::bch::BchCode;
use ssd_readretry::flash::calibration::{Calibration, OperatingCondition};
use ssd_readretry::flash::error_model::{ErrorModel, PageId};
use ssd_readretry::flash::timing::SensePhases;
use ssd_readretry::prelude::*;
// proptest's prelude also exports a `Rng` trait; disambiguate ours.
use ssd_readretry::util::rng::Rng as SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random small trace completes on any mechanism, with every host
    /// request answered and no read failures.
    #[test]
    fn random_traces_always_complete(
        seed in 0u64..1_000,
        n_requests in 1usize..120,
        write_pct in 0u32..100,
        pec in prop::sample::select(vec![0.0, 1000.0, 2000.0]),
        months in prop::sample::select(vec![0.0, 3.0, 12.0]),
        mech_idx in 0usize..4,
    ) {
        let mechanisms = [Mechanism::Baseline, Mechanism::Pr2, Mechanism::Ar2, Mechanism::PnAr2];
        let mechanism = mechanisms[mech_idx];
        let mut rng = SimRng::seed_from_u64(seed);
        let requests: Vec<HostRequest> = (0..n_requests)
            .map(|i| {
                let op = if rng.below(100) < write_pct as u64 { IoOp::Write } else { IoOp::Read };
                let lpn = rng.below(4_000);
                let len = 1 + rng.below(3) as u32;
                HostRequest::new(SimTime::from_us(i as u64 * rng.range_u64(20, 500)), op, lpn, len)
            })
            .collect();
        let trace = Trace::new("prop", requests, 5_000);
        let cfg = SsdConfig::scaled_for_tests().with_seed(seed ^ 0xF00D);
        let rpt = ReadTimingParamTable::default();
        let report = run_one(&cfg, mechanism, OperatingPoint::new(pec, months), &trace, &rpt);
        prop_assert_eq!(report.requests_completed, n_requests as u64);
        prop_assert_eq!(report.read_failures, 0);
    }

    /// For a single isolated read, PR2 and PnAR2 are never slower than the
    /// baseline, at any operating point (the paper's "latency benefit is
    /// always higher than its overhead" for N_RR ≥ 1; for N_RR = 0 PR2 pays
    /// only the small RESET overhead, bounded below).
    #[test]
    fn pipelining_never_hurts_retried_reads(
        lpn in 0u64..3_000,
        pec in prop::sample::select(vec![500.0, 1000.0, 2000.0]),
        months in prop::sample::select(vec![1.0, 3.0, 6.0, 12.0]),
    ) {
        let cfg = SsdConfig::scaled_for_tests();
        let rpt = ReadTimingParamTable::default();
        let point = OperatingPoint::new(pec, months);
        let trace = Trace::new(
            "one",
            vec![HostRequest::new(SimTime::ZERO, IoOp::Read, lpn, 1)],
            4_000,
        );
        let baseline = run_one(&cfg, Mechanism::Baseline, point, &trace, &rpt).avg_response_us();
        let pr2 = run_one(&cfg, Mechanism::Pr2, point, &trace, &rpt).avg_response_us();
        let pnar2 = run_one(&cfg, Mechanism::PnAr2, point, &trace, &rpt).avg_response_us();
        // At these ages every read retries at least once, so both mechanisms
        // strictly win (Eq. 3 vs Eq. 4/5).
        prop_assert!(pr2 <= baseline + 1e-9, "PR2 {} vs baseline {}", pr2, baseline);
        prop_assert!(pnar2 <= baseline + 1e-9, "PnAR2 {} vs baseline {}", pnar2, baseline);
    }

    /// Error-model monotonicity: more wear or more retention never *reduces*
    /// the required retry steps or the final-step error count.
    #[test]
    fn error_model_is_monotone(
        block in 0u64..500,
        page in 0u32..576,
        pec_a in 0f64..2000.0,
        pec_extra in 0f64..500.0,
        months_a in 0f64..12.0,
        months_extra in 0f64..3.0,
    ) {
        let model = ErrorModel::new(0xBEEF);
        let id = PageId::new(block, page);
        let a = OperatingCondition::new(pec_a, months_a, 30.0);
        let b = OperatingCondition::new(pec_a + pec_extra, months_a + months_extra, 30.0);
        prop_assert!(model.required_step_index(id, a) <= model.required_step_index(id, b));
        prop_assert!(model.final_step_errors(id, a) <= model.final_step_errors(id, b) + 1);
    }

    /// Calibration safety: for every condition, the RPT's chosen reduction
    /// keeps worst-case final-step errors within the ECC capability.
    #[test]
    fn rpt_reduction_is_always_safe(
        pec in 0f64..2500.0,
        months in 0f64..14.0,
        temp in prop::sample::select(vec![30.0, 55.0, 85.0]),
    ) {
        let cal = Calibration::asplos21();
        let rpt = ReadTimingParamTable::default();
        let cond = OperatingCondition::new(pec, months, temp);
        let reduction = rpt.pre_reduction(cond);
        let m = cal.m_err_with_timing(cond, reduction, 0.0, 0.0);
        prop_assert!(m <= 72.0, "unsafe at ({pec:.0}, {months:.1}, {temp}): {m}");
    }

    /// BCH round-trip: any payload with any ≤ t error pattern decodes back
    /// to the original data.
    #[test]
    fn bch_roundtrip_under_capacity(
        payload in prop::collection::vec(any::<u8>(), 16),
        n_errors in 0usize..=8,
        err_seed in any::<u64>(),
    ) {
        let code = BchCode::small_test_code().expect("valid parameters");
        let clean = code.encode_bytes(&payload).expect("sized payload");
        let mut rng = SimRng::seed_from_u64(err_seed);
        let mut corrupted = clean.clone();
        let mut flipped = std::collections::BTreeSet::new();
        while flipped.len() < n_errors {
            let pos = rng.below_usize(corrupted.len());
            if flipped.insert(pos) {
                corrupted.flip(pos);
            }
        }
        let report = code.decode(&mut corrupted).expect("within capability");
        prop_assert_eq!(report.corrected as usize, n_errors);
        prop_assert_eq!(code.extract_data_bytes(&corrupted), payload);
    }

    /// Sensing-phase reduction fractions round-trip through SensePhases.
    #[test]
    fn sense_phase_reduction_roundtrip(
        pre in 0.0f64..0.9,
        eval in 0.0f64..0.9,
        disch in 0.0f64..0.9,
    ) {
        let d = SensePhases::table1();
        let r = d.with_reduction(pre, eval, disch);
        prop_assert!((d.pre_reduction_vs(&r) - pre).abs() < 0.01);
        prop_assert!((d.eval_reduction_vs(&r) - eval).abs() < 0.01);
        prop_assert!((d.disch_reduction_vs(&r) - disch).abs() < 0.01);
        prop_assert!(r.sense_time() <= d.sense_time());
    }
}
