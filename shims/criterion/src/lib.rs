//! Offline shim for `criterion`: a minimal wall-clock benchmark harness with
//! the subset of criterion's API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched`). The workspace builds without network access to a
//! crate registry, so the real crate cannot be fetched.
//!
//! Measurement model: each `bench_function` warms up once, then runs
//! `sample_size` samples of one iteration each (batched setup excluded from
//! timing, as in the real crate) and reports min/mean/max. There is no
//! statistical analysis, plotting, or baseline comparison. Swap the path
//! dependency for the real `criterion = "0.5"` when registry access is
//! available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility, the
/// shim always times routine-only per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter, as in the real API.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.0
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the last `iter`/`iter_batched` call.
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            timings: Vec::new(),
        }
    }

    /// Times `routine` over `samples` iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        self.timings = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        self.timings = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_bench(full_name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    if b.timings.is_empty() {
        println!("{full_name:<50} (no timings recorded)");
        return;
    }
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = *b.timings.iter().min().expect("non-empty");
    let max = *b.timings.iter().max().expect("non-empty");
    println!(
        "{full_name:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.timings.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, String::from(id.into()));
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Registers and immediately runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, String::from(id.into()));
        run_bench(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond a blank separator line).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated harness code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&String::from(id.into()), 10, &mut f);
        self
    }
}

/// Bundles bench functions into a group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
