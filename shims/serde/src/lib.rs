//! Offline shim for `serde`: the workspace builds without network access to a
//! crate registry, so the real crate is replaced by the minimal surface the
//! code uses — the two derive macros (re-exported, expanding to nothing) and
//! the two trait names (empty marker traits, for symmetry with the real
//! crate's namespace layout). Swap this path dependency for the real
//! `serde = { version = "1", features = ["derive"] }` when registry access is
//! available; no source change is needed.

// Derive macros live in the macro namespace, the traits below in the type
// namespace — both can be imported by one `use serde::{Serialize,
// Deserialize}` exactly like the real crate.
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
