//! Offline shim for `serde_derive`: the workspace builds without network
//! access to a crate registry, so the real derive macros are replaced by
//! no-ops. The workspace only ever *derives* `Serialize`/`Deserialize` (it
//! never serializes through a serde data format, nor bounds generics on the
//! traits), so an empty expansion is sufficient and keeps every
//! `#[derive(Serialize, Deserialize)]` in the modelling crates compiling
//! unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`. Registers the inert
/// `#[serde(...)]` helper attribute so field annotations like
/// `#[serde(default)]` keep compiling.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`. Registers the inert
/// `#[serde(...)]` helper attribute so field annotations like
/// `#[serde(default)]` keep compiling.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
