//! Offline shim for `proptest`: a minimal, dependency-free re-implementation
//! of exactly the API surface this workspace's property tests use. The
//! workspace builds without network access to a crate registry, so the real
//! crate cannot be fetched; this shim keeps every `proptest!` test compiling
//! and running unchanged.
//!
//! Differences from the real crate, by design:
//!
//! * value generation is purely random (deterministic per test name + case
//!   index) — there is no shrinking of failing inputs;
//! * strategies are plain samplers (no `prop_map`/`prop_filter` combinator
//!   tree), covering ranges, tuples, `any::<T>()`, `prop::sample::select`,
//!   and `prop::collection::{vec, btree_set}`;
//! * `prop_assert*` report the first failing case without minimization.
//!
//! Swap the path dependency for the real `proptest = "1"` when registry
//! access is available; no test-source change is needed.

pub mod test_runner {
    //! Config + deterministic RNG driving each generated test.

    /// Per-test configuration (only the `cases` knob is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// SplitMix64 generator, seeded from the test name and case index so
    /// every run of the suite sees the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic stream for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] sampling trait and its implementations for ranges and
    //! tuples.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A sampler of values of type `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree or shrinking: a
    /// strategy simply draws one value per case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A constant strategy (`Just(v)` always yields `v`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` over the primitive types the tests draw whole-domain
    //! values from.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric values; the tests never rely on
            // NaN/infinity inputs.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod sample {
    //! `prop::sample::select`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice among `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    //! `prop::collection::{vec, btree_set}`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of `element` values with *target* size in `size`; like the real
    /// crate, duplicate draws can leave the set below target.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: a small value domain may not fill the target.
            for _ in 0..target * 4 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod prop {
    //! The `prop::` namespace as re-exported by the real prelude.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests import.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic randomized tests; see the real crate for syntax.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// running `cases` random cases. Assertion failures report the case index;
/// there is no input shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case as u64);
                let __result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}
